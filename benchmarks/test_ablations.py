"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the simulation/OS model and shows
its effect on the measured latencies:

1. DPC importance (High vs Medium) -- queue-position effect on DPC latency.
2. PIT frequency (100 Hz vs 1 kHz) -- measurement resolution effect.
3. The Win98 "legacy VMM" knob -- scaling section durations scales the
   thread-latency tail without touching the interrupt path.
4. NT work-item thread priority -- moving the servicing thread off 24
   erases the priority-24 penalty.
5. Buffer count vs buffer size at fixed total buffering (softmodem).
"""

import pytest
from dataclasses import replace

from repro.core.experiment import ExperimentConfig, run_latency_experiment
from repro.core.samples import LatencyKind
from repro.drivers.latency import LatencyToolConfig, WdmLatencyTool
from repro.drivers.softmodem import DatapumpConfig, SoftModemDatapump
from repro.hw.machine import Machine, MachineConfig
from repro.kernel.boot import boot_os
from repro.kernel.dpc import DpcImportance
from repro.kernel.intrusions import (
    IntrusionKind,
    LoadProfile,
    apply_load_profile,
)
from repro.core.experiment import build_loaded_os
from repro.workloads.base import get_workload
from benchmarks.conftest import bench_seed, write_result

SHORT_S = 30.0


def run_tool_on(os, duration_s, **tool_cfg):
    tool = WdmLatencyTool(os, LatencyToolConfig(**tool_cfg))
    tool.start()
    os.machine.run_for_ms(duration_s * 1000.0)
    return tool.collect("ablation")


class TestDpcImportanceAblation:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for importance in (DpcImportance.MEDIUM, DpcImportance.HIGH):
            os, _ = build_loaded_os("win98", "games", seed=bench_seed())
            ss = run_tool_on(os, SHORT_S, dpc_importance=importance)
            out[importance] = sorted(ss.latencies_ms(LatencyKind.DPC))
        return out

    def test_high_importance_reduces_dpc_queue_delay(self, results, benchmark):
        med = results[DpcImportance.MEDIUM]
        high = results[DpcImportance.HIGH]
        med_p99 = med[int(len(med) * 0.99)]
        high_p99 = high[int(len(high) * 0.99)]
        write_result(
            "ablation_dpc_importance.txt",
            f"DPC latency p99: medium={med_p99:.3f} ms  high={high_p99:.3f} ms",
        )
        assert high_p99 <= med_p99 * 1.05
        benchmark(lambda: sorted(med))


class TestPitFrequencyAblation:
    def test_coarser_pit_coarsens_estimates(self, benchmark):
        maxima = {}
        for pit_hz in (100.0, 1000.0):
            os, _ = build_loaded_os("nt4", "office", seed=bench_seed())
            ss = run_tool_on(os, SHORT_S, pit_hz=pit_hz, delay_ms=1000.0 / pit_hz)
            values = ss.latencies_ms(LatencyKind.DPC_INTERRUPT, origin="estimate")
            truth = ss.latencies_ms(LatencyKind.DPC_INTERRUPT, origin="truth")
            error = [e - t for e, t in zip(values, truth)]
            maxima[pit_hz] = max(error)
        write_result(
            "ablation_pit_frequency.txt",
            "\n".join(
                f"PIT {hz:6.0f} Hz: max estimate error {err:.3f} ms"
                for hz, err in maxima.items()
            ),
        )
        # Estimate error is bounded by the PIT period: ~10 ms vs ~1 ms.
        assert maxima[100.0] > 3.0 * maxima[1000.0]
        benchmark(lambda: sorted(maxima.values()))


class TestLegacySectionScalingAblation:
    @pytest.fixture(scope="class")
    def scaled_runs(self):
        base_profile = get_workload("games").profile_for("win98")
        out = {}
        for factor in (0.25, 1.0, 4.0):
            machine = Machine(MachineConfig(), seed=bench_seed())
            os = boot_os(machine, "win98")
            intrusions = tuple(
                spec.scaled(duration_factor=factor)
                if spec.kind is IntrusionKind.SECTION
                else spec
                for spec in base_profile.intrusions
            )
            profile = LoadProfile(
                name=f"games-x{factor}",
                intrusions=intrusions,
                devices=base_profile.devices,
                app_threads=base_profile.app_threads,
            )
            apply_load_profile(
                os.kernel, profile, machine.rng.child("ablation"),
                section_executor=os.section_executor,
            )
            out[factor] = run_tool_on(os, SHORT_S)
        return out

    def test_thread_tail_scales_with_section_durations(self, scaled_runs, benchmark):
        worst = {
            factor: max(ss.latencies_ms(LatencyKind.THREAD, priority=28))
            for factor, ss in scaled_runs.items()
        }
        write_result(
            "ablation_vmm_section_scale.txt",
            "\n".join(f"section scale x{f}: worst thread latency {w:.2f} ms"
                      for f, w in sorted(worst.items())),
        )
        assert worst[4.0] > worst[1.0] > worst[0.25]
        benchmark(lambda: sorted(worst.values()))

    def test_interrupt_path_untouched_by_section_scaling(self, scaled_runs):
        """SECTION durations must not leak into ISR latency."""
        isr_max = {
            factor: max(ss.latencies_ms(LatencyKind.ISR))
            for factor, ss in scaled_runs.items()
        }
        assert isr_max[4.0] < isr_max[0.25] * 4.0  # no 16x blow-up


class TestWorkItemPriorityAblation:
    def test_moving_worker_off_24_erases_the_penalty(self, benchmark):
        from repro.kernel.nt4 import build_nt4_kernel
        from repro.kernel.intrusions import WorkItemLoadSpec
        from repro.sim.rng import DurationDistribution, RngStream

        worst = {}
        for worker_priority in (24, 16):
            machine = Machine(MachineConfig(), seed=bench_seed())
            os = build_nt4_kernel(machine)
            os.work_items.kernel.set_thread_priority(os.work_items.thread, worker_priority)
            os.work_items.attach_load(
                WorkItemLoadSpec(
                    rate_hz=30.0,
                    duration=DurationDistribution(
                        body_median_ms=1.2, body_sigma=0.9, tail_prob=0.06,
                        tail_scale_ms=4.0, tail_alpha=1.9, max_ms=20.0,
                    ),
                ),
                RngStream(bench_seed(), "ablation-wi"),
            )
            ss = run_tool_on(os, SHORT_S)
            worst[worker_priority] = max(ss.latencies_ms(LatencyKind.THREAD, priority=24))
        write_result(
            "ablation_workitem_priority.txt",
            "\n".join(
                f"worker at priority {p}: worst prio-24 thread latency {w:.2f} ms"
                for p, w in sorted(worst.items())
            ),
        )
        assert worst[24] > 4.0 * worst[16]
        benchmark(lambda: sorted(worst.values()))


class TestBufferGeometryAblation:
    def test_n_buffers_vs_buffer_size_at_fixed_total(self, benchmark):
        """(n-1)*t is what matters: 2x8 ms ~ 5x2 ms of total buffering give
        comparable protection; more total buffering beats either."""
        misses = {}
        for n, t in ((2, 8.0), (5, 2.0), (4, 8.0)):
            os, _ = build_loaded_os("win98", "games", seed=bench_seed())
            pump = SoftModemDatapump(
                os, DatapumpConfig(cycle_ms=t, n_buffers=n, modality="dpc")
            )
            pump.start()
            os.machine.run_for_ms(30_000)
            report = pump.report()
            misses[(n, t)] = report.misses / max(1, report.buffers_arrived)
        write_result(
            "ablation_buffer_geometry.txt",
            "\n".join(
                f"n={n} t={t} ms (tolerance {(n-1)*t} ms): miss rate {rate:.5f}"
                for (n, t), rate in misses.items()
            ),
        )
        # 24 ms of tolerance beats 8 ms of tolerance.
        assert misses[(4, 8.0)] <= misses[(2, 8.0)]
        benchmark(lambda: sorted(misses.values()))
