"""Section 1.2's critique of microbenchmarks, as a benchmark.

"Microbenchmarks have not been very useful in assessing the OS and hardware
overhead that an application or driver will actually receive in practice"
[Bershad et al., cited by the paper].  The demonstration: run the classic
unloaded-average suite on both OSes -- they look almost identical -- then
put the loaded latency distributions next to them.
"""

import pytest

from repro.analysis.microbench import compare_microbenchmarks
from repro.core.samples import LatencyKind
from benchmarks.conftest import write_result


@pytest.fixture(scope="module")
def suites():
    return compare_microbenchmarks(iterations=400)


def test_microbench_critique_regeneration(suites, matrix, benchmark):
    nt_loaded = max(matrix[("nt4", "games")].latencies_ms(LatencyKind.THREAD, priority=28))
    w98_loaded = max(
        matrix[("win98", "games")].latencies_ms(LatencyKind.THREAD, priority=28)
    )
    ratio_micro = (
        suites["win98"].context_switch_us.mean / suites["nt4"].context_switch_us.mean
    )
    ratio_loaded = w98_loaded / nt_loaded
    report = "\n".join(
        [
            suites["nt4"].format(),
            "",
            suites["win98"].format(),
            "",
            f"microbenchmark view : win98/nt4 context-switch ratio = {ratio_micro:.1f}x",
            f"loaded-latency view : win98/nt4 worst thread latency = {ratio_loaded:.1f}x",
            "",
            "The microbenchmark lens sees two comparable kernels; the loaded",
            "latency distribution sees the difference that breaks real-time audio.",
        ]
    )
    write_result("microbench_critique.txt", report)

    # The critique itself, asserted.
    assert ratio_micro < 3.0
    assert ratio_loaded > 5.0 * ratio_micro

    from repro.analysis.microbench import run_microbench_suite

    benchmark.pedantic(
        lambda: run_microbench_suite("nt4", iterations=50), rounds=3, iterations=1
    )


def test_microbench_averages_hide_the_tail(suites, matrix):
    """The unloaded mean says nothing about the loaded p99.9."""
    unloaded_mean_ms = suites["win98"].event_wake_us.mean / 1000.0
    loaded = sorted(
        matrix[("win98", "games")].latencies_ms(LatencyKind.THREAD, priority=28)
    )
    loaded_p999_ms = loaded[int(len(loaded) * 0.999)]
    assert loaded_p999_ms > 50.0 * unloaded_mean_ms
