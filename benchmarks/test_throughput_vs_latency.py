"""Section 4.2's control experiment: throughput hides the latency gulf.

"To verify that throughput-based benchmarks would not reveal the variation
in real-time performance ... we ran the Business Winstone 97 benchmark on
Windows 98 and on Windows NT 4.0 ... the average delta between like scores
was 10% and the maximum delta was 20%."

The bench runs the Winstone-style batch on both kernels and contrasts the
few-percent score delta with the order-of-magnitude weekly-worst-case
latency ratio measured on the same pair of kernels.
"""

import pytest

from repro.core.report import compare_sample_sets
from repro.core.samples import LatencyKind
from repro.sim.rng import DurationDistribution
from repro.workloads.throughput import ThroughputConfig, compare_throughput
from benchmarks.conftest import bench_seed, write_result

CONFIG = ThroughputConfig(
    units=300,
    compute_ms=DurationDistribution(body_median_ms=4.0, body_sigma=0.5, max_ms=20.0),
    io_ms=DurationDistribution(body_median_ms=3.0, body_sigma=0.6, max_ms=20.0),
    workload="idle",
    seed=bench_seed(),
    timeout_s=120.0,
)


@pytest.fixture(scope="module")
def comparison():
    return compare_throughput(CONFIG)


def test_throughput_vs_latency_regeneration(comparison, matrix, benchmark):
    latency = compare_sample_sets(
        matrix[("nt4", "office")], matrix[("win98", "office")]
    )
    report = "\n".join(
        [
            comparison.format(),
            "",
            "...while the latency view of the same two kernels:",
            latency.format(),
        ]
    )
    write_result("throughput_vs_latency.txt", report)

    small = ThroughputConfig(units=40, seed=bench_seed(), timeout_s=60.0)
    from repro.workloads.throughput import run_throughput_benchmark

    benchmark.pedantic(
        lambda: run_throughput_benchmark("nt4", small), rounds=3, iterations=1
    )


def test_scores_within_paper_band(comparison):
    """Maximum delta the paper saw was 20%."""
    assert comparison.delta_fraction <= 0.20


def test_latency_ratio_dwarfs_throughput_delta(comparison, matrix):
    """The paper's whole point: same kernels, ~5% throughput apart,
    order(s) of magnitude apart on worst-case latency."""
    nt = matrix[("nt4", "games")]
    w98 = matrix[("win98", "games")]
    worst_nt = max(nt.latencies_ms(LatencyKind.THREAD, priority=28))
    worst_98 = max(w98.latencies_ms(LatencyKind.THREAD, priority=28))
    latency_ratio = worst_98 / worst_nt
    assert latency_ratio > 10.0
    assert latency_ratio > 20 * max(comparison.delta_fraction, 0.01)
