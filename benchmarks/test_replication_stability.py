"""Replication stability: error bars for the Table 3 cells.

Not a paper artefact -- the robustness check the single-run paper could not
afford.  Runs the Win98/games cell across several seeds and reports the
spread of each worst-case estimate; asserts that the interpolated hourly
cells are reproducible to within a factor the headline claims comfortably
survive.
"""

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.replication import replicate_experiment
from repro.core.samples import LatencyKind
from benchmarks.conftest import bench_duration_s, write_result

SEEDS = (101, 202, 303, 404)


@pytest.fixture(scope="module")
def campaign():
    duration = min(bench_duration_s(), 60.0)  # 4 replicas; keep it bounded
    return replicate_experiment(
        ExperimentConfig(os_name="win98", workload="games", duration_s=duration),
        seeds=SEEDS,
    )


def test_replication_regeneration(campaign, benchmark):
    write_result("replication_stability.txt", campaign.format())
    hour = campaign.cell(LatencyKind.THREAD, 28, "hour")
    assert hour is not None
    # Hourly thread worst case reproducible within ~2.5x band across seeds.
    lo, hi = hour.spread
    assert hi <= max(2.5 * lo, lo + 10.0)
    benchmark(campaign.format)


def test_all_replicas_agree_on_orderings(campaign):
    """Every replica individually shows thread >> DPC on Win98."""
    for sample_set in campaign.sample_sets:
        thread = max(sample_set.latencies_ms(LatencyKind.THREAD, priority=28))
        dpc = max(sample_set.latencies_ms(LatencyKind.DPC_INTERRUPT))
        assert thread > dpc


def test_pooled_set_tightens_the_weekly_cell(campaign):
    """Pooling replicas is the statistical equivalent of a longer run: the
    weekly estimate from the pool sits inside the per-replica spread."""
    from repro.core.worst_case import WorstCaseTable

    pooled_table = WorstCaseTable(campaign.pooled_sample_set())
    pooled_week = pooled_table.row(LatencyKind.THREAD, 28).max_per_week_ms
    cell = campaign.cell(LatencyKind.THREAD, 28, "week")
    lo, hi = cell.spread
    assert lo * 0.5 <= pooled_week <= hi * 2.0
