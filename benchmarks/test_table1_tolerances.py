"""Table 1: latency tolerances of multimedia applications.

Purely analytic -- the table is reproduced verbatim from the (n, t) model
and checked against the paper's printed ranges.
"""

from repro.analysis.tolerance import (
    APPLICATION_TOLERANCES,
    format_table1,
    latency_tolerance_ms,
)
from benchmarks.conftest import write_result

PAPER_TABLE1 = {
    "ADSL": (4.0, 10.0),
    "Modem": (12.0, 20.0),
    "RT audio": (20.0, 60.0),
    "RT video": (33.0, 100.0),
}


def test_table1_regeneration(benchmark):
    table = benchmark(format_table1)
    write_result("table1_latency_tolerances.txt", table)
    for row in APPLICATION_TOLERANCES:
        assert row.paper_tolerance_ms == PAPER_TABLE1[row.name]


def test_tolerance_model_reproduces_ranges():
    """Every printed range is reachable from the row's (n, t) ranges."""
    for row in APPLICATION_TOLERANCES:
        t_lo, t_hi = row.buffer_ms
        n_lo, n_hi = row.n_buffers
        reachable = [
            latency_tolerance_ms(n, t)
            for n in range(n_lo, n_hi + 1)
            for t in (t_lo, t_hi)
        ]
        lo, hi = row.paper_tolerance_ms
        assert min(reachable) <= lo
        assert max(reachable) >= hi


def test_paper_footnote_realistic_audio():
    """Footnote 1: "4 buffers, which yields a latency tolerance of 20 to 40
    milliseconds, would be more realistic for low latency audio" -- i.e.
    (4-1)*t spans 20-40 ms for realistic audio buffer sizes."""
    assert latency_tolerance_ms(4, 20.0 / 3.0) == 20.0
    assert latency_tolerance_ms(4, 40.0 / 3.0) == 40.0
    assert 20.0 <= latency_tolerance_ms(4, 8.0) <= 40.0
