"""Deterministic call-budget gate for the simulator hot path.

Wall-clock benchmarks are hopeless regression detectors on shared CI
runners, so this gate counts *function calls per simulated second*
instead: each budgeted cell is seeded, its event stream is
bit-reproducible, and therefore so is the number of times each hot
function runs.  A >20% jump in any budgeted function's call rate (or in
the repro-wide total) means someone re-introduced per-event overhead the
segment-compiled execution path removed -- fail loudly, on any machine.

Two cells are gated: the loaded ``win98/games`` cell exercises every
dispatch path, and the ``nt4/idle`` cell pins the virtual-time
fast-forward -- with nearly every PIT tick batch-settled its call rates
are tiny, so a regression that stops spans from settling explodes them
well past the headroom.

The budget lives in ``benchmarks/call_budget.json``.  After an
*intentional* hot-path restructuring, refresh it with::

    PYTHONPATH=src python tools/profile_sim.py --write-budget \\
        benchmarks/call_budget.json

and eyeball the diff: rates should move down (or stay put), not up.
"""

import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from profile_sim import call_counts  # noqa: E402

BUDGET_FILE = Path(__file__).parent / "call_budget.json"

#: Allowed growth over the recorded rate before the gate fails.  Wide
#: enough to absorb deliberate small feature additions, tight enough to
#: catch an accidental per-event regression (those multiply rates).
HEADROOM = 1.2

_BUDGET = json.loads(BUDGET_FILE.read_text())


@pytest.mark.parametrize("cell", sorted(_BUDGET["cells"]))
def test_hot_path_call_budget(cell):
    budget = _BUDGET["cells"][cell]
    cfg = budget["config"]
    counts = call_counts(cfg["os"], cfg["workload"], cfg["duration_s"], cfg["seed"])

    total = counts["total_repro_calls_per_sim_s"]
    total_allowed = budget["total_repro_calls_per_sim_s"] * HEADROOM
    assert total <= total_allowed, (
        f"{cell}: repro-wide call rate regressed: {total:.0f} calls/sim-s vs "
        f"budget {budget['total_repro_calls_per_sim_s']:.0f} (+20% headroom "
        f"= {total_allowed:.0f}); refresh the budget only if intentional"
    )

    failures = []
    for name, budgeted_rate in budget["functions"].items():
        entry = counts["functions"].get(name)
        actual = entry["calls_per_sim_s"] if entry is not None else 0.0
        if actual > budgeted_rate * HEADROOM:
            failures.append(
                f"  {name}: {actual:.0f} calls/sim-s > "
                f"{budgeted_rate:.0f} * {HEADROOM}"
            )
    assert not failures, f"{cell} call-budget regressions:\n" + "\n".join(failures)

    # The recorded fast-forward behaviour is part of the budget: an idle
    # cell that stops settling spans regresses call rates, but assert the
    # mechanism directly too so the failure names the cause.
    recorded_ff = budget.get("fast_forward")
    if recorded_ff and recorded_ff["ticks_fast_forwarded"] > 0:
        assert counts["fast_forward"]["ticks_fast_forwarded"] > 0, (
            f"{cell}: budget recorded {recorded_ff['ticks_fast_forwarded']} "
            "batch-settled ticks but this run settled none -- virtual-time "
            "fast-forward stopped engaging"
        )
