"""Campaign-runner performance: parallel fan-out and cache replay.

Two go-faster claims, each measured against the serial cold path:

* ``jobs=4`` beats serial by >=1.5x wall-clock on an 8-cell campaign
  (needs real CPUs -- skipped on single-CPU runners);
* replaying a campaign from the content-addressed cache is >=10x faster
  than simulating it cold (measurable anywhere).

Cells are deliberately short: the speedup ratios are what matter, and
they are duration-independent because every cell does identical work.
"""

import os
import time

import pytest

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig

from .test_sim_performance import record_measurement

#: Long enough that process spawn overhead (~100 ms/worker) is small
#: against per-cell simulation time, short enough for a CI smoke job.
CELL_DURATION_S = 4.0


def _eight_cells():
    return [
        ExperimentConfig(os_name=os_name, workload=workload,
                         duration_s=CELL_DURATION_S, seed=1999)
        for os_name in ("nt4", "win98")
        for workload in ("office", "workstation", "games", "web")
    ]


def _wall(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_parallel_campaign_speedup():
    cpus = os.cpu_count() or 1
    if cpus < 2:
        # Record *why* the measurement is absent rather than silently
        # leaving a stale/missing entry: BENCH_sim.json is the durable
        # perf record, and "not measured here" is itself a data point.
        # The note is byte-identical on every single-CPU host (no host
        # details interpolated) so reruns across machines never churn
        # the BENCH_sim.json diff.
        record_measurement(
            "campaign_parallel_8cells",
            note=(
                "skipped: parallel speedup needs >=2 CPUs; rerun "
                "benchmarks/test_campaign_performance.py on a "
                "multi-core machine to measure"
            ),
        )
        pytest.skip(f"parallel speedup needs >=2 CPUs (host has {cpus})")
    configs = _eight_cells()
    serial = _wall(lambda: run_campaign(configs, jobs=1))
    parallel = _wall(lambda: run_campaign(configs, jobs=4))
    speedup = serial / parallel
    record_measurement(
        "campaign_parallel_8cells",
        serial_wall_s=serial,
        jobs4_wall_s=parallel,
        speedup=round(speedup, 2),
        cpus=os.cpu_count(),
    )
    assert speedup >= 1.5, (
        f"jobs=4 only {speedup:.2f}x faster than serial "
        f"({parallel:.1f}s vs {serial:.1f}s)"
    )


def test_cache_replay_speedup(tmp_path):
    configs = _eight_cells()
    cold = _wall(lambda: run_campaign(configs, jobs=1, cache_dir=tmp_path))
    warm = _wall(lambda: run_campaign(configs, jobs=1, cache_dir=tmp_path))
    speedup = cold / warm
    record_measurement(
        "campaign_cache_replay_8cells",
        cold_wall_s=cold,
        warm_wall_s=warm,
        speedup=round(speedup, 1),
    )
    assert speedup >= 10.0, (
        f"cache replay only {speedup:.1f}x faster than cold "
        f"({warm:.2f}s vs {cold:.2f}s)"
    )
