"""Figure 4: log-log latency distributions, both OSes x four workloads.

Regenerates the six panel families:

* Windows NT 4.0 DPC interrupt latency
* Windows 98 interrupt + DPC latency
* NT4 / Win98 kernel RT-thread latency at priority 28
* NT4 / Win98 kernel RT-thread latency at priority 24

and checks the qualitative properties the paper reads off them.
"""

import pytest

from repro.core.histogram import LatencyHistogram
from repro.core.report import format_figure4_panel
from repro.core.samples import LatencyKind
from benchmarks.conftest import WORKLOADS, write_result

PANELS = (
    ("nt4", LatencyKind.DPC_INTERRUPT, None, "NT4 DPC interrupt latency"),
    ("win98", LatencyKind.DPC_INTERRUPT, None, "Win98 interrupt + DPC latency"),
    ("nt4", LatencyKind.THREAD, 28, "NT4 thread latency (RT prio 28)"),
    ("win98", LatencyKind.THREAD, 28, "Win98 thread latency (RT prio 28)"),
    ("nt4", LatencyKind.THREAD, 24, "NT4 thread latency (RT prio 24)"),
    ("win98", LatencyKind.THREAD, 24, "Win98 thread latency (RT prio 24)"),
)


def test_figure4_regeneration(matrix, benchmark):
    blocks = []
    for os_name, kind, priority, title in PANELS:
        blocks.append(f"--- {title} ---")
        for workload in WORKLOADS:
            blocks.append(format_figure4_panel(matrix[(os_name, workload)], kind, priority))
            blocks.append("")
    write_result("figure4_latency_distributions.txt", "\n".join(blocks))

    # Inline shape check (kept here so --benchmark-only still validates):
    # Win98 games thread tail dwarfs NT's.
    nt_worst = max(matrix[("nt4", "games")].latencies_ms(LatencyKind.THREAD, priority=28))
    w98_worst = max(matrix[("win98", "games")].latencies_ms(LatencyKind.THREAD, priority=28))
    assert w98_worst > 3.0 * nt_worst

    # Bench the panel computation itself.
    sample_set = matrix[("win98", "games")]
    benchmark(
        lambda: LatencyHistogram.from_values(
            sample_set.latencies_ms(LatencyKind.THREAD, priority=28)
        )
    )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_win98_thread_tails_dwarf_nt(matrix, workload):
    """Every workload: the Win98 thread tail extends far beyond NT's."""
    nt = max(matrix[("nt4", workload)].latencies_ms(LatencyKind.THREAD, priority=28))
    w98 = max(matrix[("win98", workload)].latencies_ms(LatencyKind.THREAD, priority=28))
    assert w98 > 3.0 * nt


@pytest.mark.parametrize("workload", WORKLOADS)
def test_win98_heavy_tail_on_loglog(matrix, workload):
    """Win98 panels have mass spread over many log buckets (the 'straight
    tail'); NT's high-RT panels collapse into a couple of buckets."""
    w98 = LatencyHistogram.from_values(
        matrix[("win98", workload)].latencies_ms(LatencyKind.THREAD, priority=28)
    )
    nt = LatencyHistogram.from_values(
        matrix[("nt4", workload)].latencies_ms(LatencyKind.THREAD, priority=28)
    )
    assert len(w98.nonzero_buckets()) >= len(nt.nonzero_buckets()) + 2


def test_games_is_worst_win98_workload_for_dpc_path(matrix):
    maxima = {
        workload: max(matrix[("win98", workload)].latencies_ms(LatencyKind.DPC_INTERRUPT))
        for workload in WORKLOADS
    }
    assert maxima["games"] == max(maxima.values())


def test_nt_priority_24_visibly_worse_than_28(matrix):
    for workload in WORKLOADS:
        ss = matrix[("nt4", workload)]
        p24 = max(ss.latencies_ms(LatencyKind.THREAD, priority=24))
        p28 = max(ss.latencies_ms(LatencyKind.THREAD, priority=28))
        assert p24 > 3.0 * p28, workload


def test_win98_prio24_and_28_similar(matrix):
    """On Win98 the VMM sections block both RT priorities alike."""
    for workload in WORKLOADS:
        ss = matrix[("win98", workload)]
        p24 = max(ss.latencies_ms(LatencyKind.THREAD, priority=24))
        p28 = max(ss.latencies_ms(LatencyKind.THREAD, priority=28))
        ratio = p24 / p28
        assert 0.2 < ratio < 5.0, workload
