"""Kernel dispatch and sample-pipeline microbenchmarks (ISSUE 2).

Complements ``test_sim_performance.py``: where that file times whole
simulations, these isolate the two subsystems the dispatch fast path
optimised -- interrupt delivery through the kernel (Frame free-list, PIC
pending list, guarded tracing) and the columnar sample recorder
(``array('q')`` columns + cached sorted series).  Headline numbers merge
into ``BENCH_sim.json`` alongside the rest.
"""

import random

from repro.core.experiment import build_loaded_os
from repro.core.samples import LatencyKind, RawSample, SampleColumns, SampleSet
from repro.sim.clock import CpuClock

from benchmarks.test_sim_performance import record_measurement


def test_kernel_dispatch_throughput(benchmark):
    """Interrupt deliveries per wall-second through the loaded kernel."""

    def one_second_loaded():
        os, _ = build_loaded_os("win98", "games", seed=1)
        os.machine.run_for_ms(1000)
        return os.kernel.stats.interrupts_delivered

    interrupts = benchmark.pedantic(one_second_loaded, rounds=3, iterations=1)
    assert interrupts > 500
    per_wall_s = interrupts / benchmark.stats.stats.min
    record_measurement(
        "kernel_dispatch_throughput",
        interrupts_per_wall_s=round(per_wall_s),
        interrupts_per_simulated_s=interrupts,
    )


def _synthetic_cycles(n):
    """Plausible measurement cycles (ints only, like the live recorder)."""
    clock = CpuClock()
    rng = random.Random(42)
    ms = clock.ms_to_cycles
    samples = []
    t = 0
    for seq in range(n):
        t += ms(1.0) + rng.randrange(0, ms(0.25))
        samples.append(
            RawSample(
                seq=seq,
                priority=28 if seq % 2 == 0 else 24,
                t_read=t,
                delay_cycles=ms(1.0),
                t_assert=t + ms(1.0) + rng.randrange(0, ms(1.0)),
                t_isr=t + ms(1.1) + rng.randrange(0, ms(1.0)),
                t_dpc=t + ms(1.2) + rng.randrange(0, ms(4.0)),
                t_thread=t + ms(1.3) + rng.randrange(0, ms(8.0)),
            )
        )
    return clock, samples


def test_sample_recording_throughput(benchmark):
    """Cycles per wall-second through the columnar recorder end to end.

    Streams N pre-built cycles into :class:`SampleColumns` and then pulls
    the two sorted series every figure consumes, i.e. the whole
    record-then-analyse path minus the simulator.
    """
    n = 20_000
    clock, samples = _synthetic_cycles(n)

    def record_and_analyse():
        columns = SampleColumns()
        append = columns.append
        for sample in samples:
            append(sample)
        ss = SampleSet(clock, "win98", "games", duration_s=n / 1000.0, columns=columns)
        ss.sorted_latencies_ms(LatencyKind.DPC_INTERRUPT)
        ss.sorted_latencies_ms(LatencyKind.THREAD, priority=28)
        return len(ss)

    assert benchmark(record_and_analyse) == n
    per_sec = n / benchmark.stats.stats.min
    record_measurement(
        "sample_recording_rate",
        samples_per_wall_s=round(per_sec),
    )


def test_sorted_series_cache_amortises_reuse(benchmark):
    """Re-deriving percentiles off the cached sorted series is O(1)-ish."""
    n = 20_000
    clock, samples = _synthetic_cycles(n)
    columns = SampleColumns()
    for sample in samples:
        columns.append(sample)
    ss = SampleSet(clock, "win98", "games", duration_s=n / 1000.0, columns=columns)
    ss.sorted_latencies_ms(LatencyKind.DPC_INTERRUPT)  # warm

    from repro.core.stats import percentile

    def reuse():
        series = ss.sorted_latencies_ms(LatencyKind.DPC_INTERRUPT)
        return percentile(series, 0.999)

    result = benchmark(reuse)
    assert result > 0.0
    record_measurement(
        "sorted_series_reuse",
        seconds_per_percentile_query=benchmark.stats.stats.min,
    )
