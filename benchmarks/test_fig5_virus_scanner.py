"""Figure 5: effect of the Plus! Pack virus scanner on thread latency.

Runs the Win98 office load with and without the scanner and regenerates the
two overlaid priority-24 thread latency distributions.  Paper: "with the
virus scanner 16 millisecond thread latencies occur over two orders of
magnitude more frequently" (once per ~1,000 waits vs once per ~165,000).
"""

import pytest

from repro.core.experiment import ExperimentConfig, run_latency_experiment
from repro.core.histogram import LatencyHistogram, compare_tail_weight
from repro.core.samples import LatencyKind
from repro.workloads.perturbations import VIRUS_SCANNER
from benchmarks.conftest import bench_duration_s, bench_seed, write_result


@pytest.fixture(scope="module")
def pair():
    duration = bench_duration_s()
    seed = bench_seed()
    base = run_latency_experiment(
        ExperimentConfig(os_name="win98", workload="office", duration_s=duration, seed=seed)
    ).sample_set
    scanned = run_latency_experiment(
        ExperimentConfig(
            os_name="win98", workload="office", duration_s=duration, seed=seed,
            extra_profile=VIRUS_SCANNER,
        )
    ).sample_set
    return base, scanned


def histogram_24(sample_set):
    return LatencyHistogram.from_values(
        sample_set.latencies_ms(LatencyKind.THREAD, priority=24)
    )


def test_figure5_regeneration(pair, benchmark):
    base, scanned = pair
    blocks = [
        histogram_24(base).render(
            title="Win98 office, NO virus scanner (thread latency, RT prio 24)"
        ),
        "",
        histogram_24(scanned).render(
            title="Win98 office, WITH virus scanner (thread latency, RT prio 24)"
        ),
    ]
    write_result("figure5_virus_scanner.txt", "\n".join(blocks))
    # Inline shape check: the scanner visibly thickens the tail.
    assert histogram_24(scanned).percent_exceeding(8.0) > histogram_24(
        base
    ).percent_exceeding(8.0)
    benchmark(lambda: histogram_24(base))


def test_scanner_inflates_long_latency_frequency(pair):
    """The paper's two-orders-of-magnitude claim, asserted at >= 10x to
    absorb run-length noise (the exact factor is printed to the report)."""
    base, scanned = pair
    ratio = compare_tail_weight(histogram_24(scanned), histogram_24(base), 8.0)
    if ratio is None:
        # Baseline saw nothing above 8 ms at this run length: even stronger.
        assert histogram_24(scanned).percent_exceeding(8.0) > 0
    else:
        assert ratio > 10.0


def test_scanner_rate_roughly_once_per_thousand_waits(pair):
    """Paper: ~one 16 ms latency per 1,000 waits with the scanner on."""
    _, scanned = pair
    values = scanned.latencies_ms(LatencyKind.THREAD, priority=24)
    over = sum(1 for v in values if v > 14.0)
    rate = over / len(values)
    assert 1e-4 < rate < 3e-2  # centred on ~1e-3

def test_scanner_leaves_dpc_path_mostly_alone(pair):
    """The scanner hurts threads (sections), not the interrupt path."""
    base, scanned = pair
    base_dpc = max(base.latencies_ms(LatencyKind.DPC_INTERRUPT))
    scanned_dpc = max(scanned.latencies_ms(LatencyKind.DPC_INTERRUPT))
    assert scanned_dpc < 3.0 * base_dpc
