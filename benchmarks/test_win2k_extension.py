"""Extension bench: the Windows 2000 beta alongside the paper's two OSes.

Not a paper artefact -- the section 6.1 monitoring effort, regenerated:
the same campaign on win98 / nt4 / win2k, one summary table.
"""

import pytest

from repro.core.experiment import ExperimentConfig, run_latency_experiment
from repro.core.samples import LatencyKind
from repro.core.worst_case import WorstCaseTable
from benchmarks.conftest import bench_duration_s, bench_seed, write_result


@pytest.fixture(scope="module")
def three_way(matrix):
    duration = min(bench_duration_s(), 120.0)
    sets = {
        "nt4": matrix[("nt4", "games")],
        "win98": matrix[("win98", "games")],
        "win2k": run_latency_experiment(
            ExperimentConfig(
                os_name="win2k", workload="games", duration_s=duration, seed=bench_seed()
            )
        ).sample_set,
    }
    return sets


def test_three_os_regeneration(three_way, benchmark):
    rows = [f"{'OS':8s} {'DPC-int wk':>12s} {'thr28 wk':>10s} {'thr24 wk':>10s}"]
    weekly = {}
    for os_name in ("win98", "nt4", "win2k"):
        table = WorstCaseTable(three_way[os_name])
        dpc = table.row(LatencyKind.DPC_INTERRUPT, None).max_per_week_ms
        t28 = table.row(LatencyKind.THREAD, 28).max_per_week_ms
        t24 = table.row(LatencyKind.THREAD, 24).max_per_week_ms
        weekly[os_name] = (dpc, t28, t24)
        rows.append(f"{os_name:8s} {dpc:12.2f} {t28:10.2f} {t24:10.2f}")
    write_result("win2k_extension_three_way.txt", "\n".join(rows))

    # The NT-family kernels are the same league; 98 is its own league.
    assert weekly["win98"][1] > 3.0 * weekly["nt4"][1]
    assert weekly["win98"][1] > 3.0 * weekly["win2k"][1]
    assert 0.2 <= weekly["win2k"][1] / weekly["nt4"][1] <= 5.0

    benchmark(lambda: WorstCaseTable(three_way["win2k"]))


def test_win2k_keeps_work_item_penalty(three_way):
    t28 = max(three_way["win2k"].latencies_ms(LatencyKind.THREAD, priority=28))
    t24 = max(three_way["win2k"].latencies_ms(LatencyKind.THREAD, priority=24))
    assert t24 > 3.0 * t28
