"""Simulator performance benchmarks (pytest-benchmark timing targets).

These are the only benchmarks here about *our* code's speed rather than
the paper's results: events/second through the engine and simulated-seconds
per wall-second for a loaded kernel.

Each test also records its headline number into ``BENCH_sim.json`` at the
repo root, next to the frozen pre-optimization baselines, so speedups are
tracked in-tree (CI uploads the file as an artifact).
"""

import json
from pathlib import Path

from repro.core.experiment import build_loaded_os
from repro.hw.machine import Machine, MachineConfig
from repro.kernel.boot import boot_os
from repro.sim.engine import Engine

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def record_measurement(name: str, **fields) -> None:
    """Merge one measurement into BENCH_sim.json (baselines untouched)."""
    payload = {}
    if BENCH_FILE.exists():
        try:
            payload = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            payload = {}
    measured = payload.setdefault("measured", {})
    measured[name] = fields
    BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.schedule_in(10, tick)

        engine.schedule_in(10, tick)
        engine.drain(max_events=20_000)
        return count[0]

    assert benchmark(run_10k_events) == 10_000
    events_per_sec = 10_000 / benchmark.stats.stats.min
    record_measurement(
        "engine_event_throughput",
        events_per_sec=round(events_per_sec),
        seconds_per_10k_events=benchmark.stats.stats.min,
    )


def test_idle_kernel_simulation_rate(benchmark):
    def one_second_idle():
        machine = Machine(MachineConfig(pit_hz=1000.0), seed=1)
        boot_os(machine, "nt4", baseline_load=False)
        machine.run_for_ms(1000)
        # The recorded rate only means what it claims if the idle-span
        # fast-forward actually engaged: a silently disqualified span
        # (e.g. an RNG-drawing PIT hook) would re-simulate every tick and
        # quietly regress this metric ~100x.
        assert machine.engine.ticks_fast_forwarded > 0
        return machine.engine.events_processed

    events = benchmark(one_second_idle)
    assert events > 1000
    record_measurement(
        "idle_kernel_simulation_rate",
        wall_s_per_simulated_s=benchmark.stats.stats.min,
    )


def test_loaded_win98_simulation_rate(benchmark):
    def one_second_loaded():
        os, _ = build_loaded_os("win98", "games", seed=1)
        os.machine.run_for_ms(1000)
        return os.kernel.stats.interrupts_delivered

    interrupts = benchmark.pedantic(one_second_loaded, rounds=3, iterations=1)
    assert interrupts > 500
    record_measurement(
        "loaded_win98_simulation_rate",
        wall_s_per_simulated_s=benchmark.stats.stats.min,
    )
