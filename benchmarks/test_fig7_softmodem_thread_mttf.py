"""Figure 7: MTTF to buffer underrun, THREAD-based datapump, Windows 98.

Same derivation as Figure 6 but indexed into the high-priority RT thread
*interrupt* latency distribution (hardware interrupt to thread).  Paper
readings: the thread-based datapump "will require about 48 milliseconds of
latency tolerance (e.g., four 16 millisecond buffers) in order to average
an hour between misses while playing an 'average' 3D game" -- an order of
magnitude more buffering than the DPC-based pump needs.

The NT analysis is forgone exactly as the paper does ("the worst case
latencies for Windows NT are uniformly below the minimum modem slack time
of 3 milliseconds"), but we *verify* that premise here.
"""

import pytest

from repro.analysis.mttf import mttf_curve, mttf_for_buffering
from repro.core.samples import LatencyKind
from benchmarks.conftest import WORKLOADS, write_result

COMPUTE_MS = 2.0


@pytest.fixture(scope="module")
def curves(matrix):
    out = {}
    for workload in WORKLOADS:
        sample_set = matrix[("win98", workload)]
        latencies = sample_set.latencies_ms(
            LatencyKind.THREAD_INTERRUPT, priority=28
        )
        out[workload] = mttf_curve(latencies, compute_ms=COMPUTE_MS)
    return out


def test_figure7_regeneration(curves, matrix, benchmark):
    from repro.analysis.charts import mttf_chart

    blocks = ["Figure 7: MTTF (s) of thread-based softmodem datapump on Windows 98"]
    for workload in WORKLOADS:
        blocks.append(f"\n-- {workload} --")
        for point in curves[workload]:
            blocks.append(point.format())
    blocks.append("")
    blocks.append(mttf_chart(curves))
    write_result("figure7_softmodem_thread_mttf.txt", "\n".join(blocks))

    # Inline shape check: under games the thread pump still misses at
    # buffering levels where Figure 6's DPC pump is already clean.
    games = {p.buffering_ms: p for p in curves["games"]}
    assert games[16.0].p_miss > 0.0

    latencies = matrix[("win98", "games")].latencies_ms(
        LatencyKind.THREAD_INTERRUPT, priority=28
    )
    benchmark(lambda: mttf_curve(latencies, compute_ms=COMPUTE_MS))


def test_thread_pump_needs_more_buffering_than_dpc_pump(curves, matrix):
    """The Figure 6 vs Figure 7 comparison at equal buffering."""
    dpc_latencies = matrix[("win98", "games")].latencies_ms(LatencyKind.DPC_INTERRUPT)
    thread_latencies = matrix[("win98", "games")].latencies_ms(
        LatencyKind.THREAD_INTERRUPT, priority=28
    )
    for buffering in (16.0, 24.0, 32.0):
        dpc = mttf_for_buffering(dpc_latencies, buffering, COMPUTE_MS)
        thread = mttf_for_buffering(thread_latencies, buffering, COMPUTE_MS)
        if dpc.mttf_s is None:
            continue  # DPC pump already perfect here: trivially better
        assert thread.mttf_s is not None
        assert thread.mttf_s <= dpc.mttf_s * 1.5


def test_games_hourly_mttf_needs_tens_of_ms(curves):
    """Paper: ~48 ms of tolerance for an hour between misses in games."""
    reached = None
    for point in curves["games"]:
        if point.mttf_s is None or point.mttf_s >= 3600.0:
            reached = point.buffering_ms
            break
    assert reached is not None
    assert reached >= 16.0  # far beyond the DPC pump's needs


def test_nt_premise_worst_case_below_modem_slack(matrix):
    """Verify why the paper forgoes the NT figures: NT worst cases sit
    below the minimum modem slack (3 ms = 4 ms cycle - 1 ms compute)."""
    for workload in WORKLOADS:
        ss = matrix[("nt4", workload)]
        worst_thread = max(ss.latencies_ms(LatencyKind.THREAD, priority=28))
        assert worst_thread < 3.0, workload
