"""Serving-layer performance: cache-hot request rate and coalescing.

Two headline numbers for BENCH_sim.json:

* ``service_cache_hot_rps`` -- served requests/second for a cell that is
  already in the result store (the hot LRU path: no simulation, no disk,
  no re-encode).  This is the serving layer's steady-state ceiling for
  popular cells.
* ``service_coalesced_fanout`` -- K clients asking for one uncached cell
  cost exactly one simulation; the recorded fields pin the coalescing
  bookkeeping alongside the wall numbers.

Thresholds are deliberately loose (CI-shared runners); the recorded
numbers are the real output.
"""

import time

from repro.core.experiment import ExperimentConfig
from repro.service import ServiceClient, ServiceThread

from .test_sim_performance import record_measurement

CELL = ExperimentConfig(os_name="win98", workload="office",
                        duration_s=0.5, seed=1999)

#: Requests timed against the hot store.
HOT_REQUESTS = 200


def test_cache_hot_served_requests_per_second(tmp_path):
    with ServiceThread(cache_dir=tmp_path) as server:
        with ServiceClient(port=server.port) as client:
            client.submit(CELL)  # simulate once, warming LRU + disk
            t0 = time.perf_counter()
            for _ in range(HOT_REQUESTS):
                client.submit(CELL, as_text=True)
            elapsed = time.perf_counter() - t0
            stats = client.stats()
    rps = HOT_REQUESTS / elapsed
    assert stats["counters"]["simulations"] == 1
    assert stats["counters"]["cache_hits"] == HOT_REQUESTS
    record_measurement(
        "service_cache_hot_rps",
        requests=HOT_REQUESTS,
        wall_s=round(elapsed, 4),
        requests_per_sec=round(rps, 1),
        hot_hits=stats["gauges"]["store"]["hot_hits"],
    )
    # Conservative floor: even a loaded CI box serves hundreds/sec; a
    # regression to per-request simulation would be ~20/s for this cell.
    assert rps >= 50, f"cache-hot serving only {rps:.0f} req/s"


def test_coalesced_fanout_costs_one_simulation(tmp_path):
    k = 8
    config = CELL.with_overrides(seed=7777)  # distinct from the hot test
    with ServiceThread(cache_dir=tmp_path, start_paused=True) as server:
        with ServiceClient(port=server.port) as client:
            t0 = time.perf_counter()
            job_ids = {client.submit_nowait(config) for _ in range(k)}
            server.resume()
            client.result(next(iter(job_ids)))
            elapsed = time.perf_counter() - t0
            stats = client.stats()
    assert len(job_ids) == 1
    assert stats["counters"]["simulations"] == 1
    assert stats["counters"]["coalesced"] == k - 1
    record_measurement(
        "service_coalesced_fanout",
        clients=k,
        simulations=stats["counters"]["simulations"],
        coalesced=stats["counters"]["coalesced"],
        wall_s=round(elapsed, 4),
    )
