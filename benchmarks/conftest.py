"""Shared benchmark fixtures.

The paper's tables and figures all derive from the same measurement
campaigns, so the OS x workload matrix is run once per benchmark session
and shared.  Campaign length is controlled by ``REPRO_BENCH_DURATION_S``
(default 120 simulated seconds per cell; 600 reproduces the calibration
quality used for EXPERIMENTS.md, at ~12 minutes of wall time for the
matrix).

Regenerated tables/figures are printed to stdout (run with ``-s`` to see
them) and written under ``benchmarks/results/``.

The matrix goes through the campaign runner, so ``REPRO_BENCH_JOBS``
fans the cells across worker processes and ``REPRO_BENCH_CACHE_DIR``
memoizes them across sessions; neither changes the resulting bytes.
"""

import os
from pathlib import Path

import pytest

from repro.core.campaign import run_sample_matrix

RESULTS_DIR = Path(__file__).parent / "results"

OS_NAMES = ("nt4", "win98")
WORKLOADS = ("office", "workstation", "games", "web")


def bench_duration_s() -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION_S", "120"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1999"))


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def matrix():
    """SampleSet for every (os, workload) cell, computed once."""
    return run_sample_matrix(
        os_names=OS_NAMES,
        workloads=WORKLOADS,
        duration_s=bench_duration_s(),
        seed=bench_seed(),
        jobs=bench_jobs(),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE_DIR"),
    )


def write_result(name: str, content: str) -> Path:
    """Persist a regenerated table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{content}")
    return path
