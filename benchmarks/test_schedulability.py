"""Section 5.2: schedulability analysis with pseudo worst cases.

Regenerates the paper's proposed workflow end-to-end: pick permissible
error rates per device class, read pseudo-worst-case latencies off the
measured Win98/NT distributions, and feed them into response-time analysis
for a realistic soft-modem + audio task set.  The expected outcome mirrors
the paper's conclusions: the task set is comfortably schedulable on NT
(thread-based!) and fails or barely scrapes by on Windows 98 unless the
datapump moves to DPCs.
"""

import pytest

from repro.analysis.schedulability import (
    PeriodicTask,
    TaskSet,
    format_analysis,
    is_schedulable,
    pseudo_worst_case_ms,
    response_time_analysis,
)
from repro.core.samples import LatencyKind
from benchmarks.conftest import write_result

#: Permissible miss rates from section 5.2: "one dropped buffer every five
#: or ten minutes for low latency audio ..., one dropped buffer per hour
#: for a soft modem".
MODEM_MISSES_PER_HOUR = 1.0
AUDIO_MISSES_PER_HOUR = 8.0


@pytest.fixture(scope="module")
def pseudo_worst_cases(matrix):
    out = {}
    for os_name in ("nt4", "win98"):
        ss = matrix[(os_name, "games")]
        dpc = ss.latencies_ms(LatencyKind.DPC_INTERRUPT)
        thread = ss.latencies_ms(LatencyKind.THREAD_INTERRUPT, priority=28)
        out[os_name] = {
            "dpc": pseudo_worst_case_ms(dpc, ss.duration_s, MODEM_MISSES_PER_HOUR),
            "thread": pseudo_worst_case_ms(thread, ss.duration_s, MODEM_MISSES_PER_HOUR),
            "thread_audio": pseudo_worst_case_ms(
                thread, ss.duration_s, AUDIO_MISSES_PER_HOUR
            ),
        }
    return out


def modem_task_set(dispatch_ms):
    return TaskSet(
        [
            PeriodicTask("softmodem-pump", period_ms=8.0, wcet_ms=2.0,
                         dispatch_latency_ms=dispatch_ms),
            PeriodicTask("audio-render", period_ms=16.0, wcet_ms=3.0,
                         dispatch_latency_ms=dispatch_ms),
            PeriodicTask("housekeeping", period_ms=100.0, wcet_ms=10.0),
        ]
    )


def test_schedulability_regeneration(pseudo_worst_cases, benchmark):
    blocks = []
    for os_name, modes in pseudo_worst_cases.items():
        blocks.append(f"== {os_name} (games load) pseudo worst cases ==")
        for mode, value in modes.items():
            blocks.append(f"  {mode:14s} {value:8.2f} ms")
        for mode in ("dpc", "thread"):
            tasks = modem_task_set(modes[mode])
            blocks.append(f"-- task set with {mode}-based datapump --")
            blocks.append(format_analysis(tasks))
        blocks.append("")
    write_result("schedulability_analysis.txt", "\n".join(blocks))
    benchmark(lambda: response_time_analysis(modem_task_set(1.0)))


def test_nt_thread_based_modem_schedulable(pseudo_worst_cases):
    """The paper's software-engineering conclusion: on NT you can just use
    threads."""
    assert is_schedulable(modem_task_set(pseudo_worst_cases["nt4"]["thread"]))


def test_win98_thread_based_modem_not_schedulable(pseudo_worst_cases):
    """...but on Windows 98 'many compute-intensive drivers will be forced
    to use DPCs'."""
    assert not is_schedulable(modem_task_set(pseudo_worst_cases["win98"]["thread"]))


def test_pseudo_worst_case_far_below_absolute_worst(matrix):
    """The amortisation point: the pseudo worst case (1 miss/hour) is far
    smaller than the absolute observed worst case, rescuing RMA from
    hopeless pessimism."""
    ss = matrix[("win98", "games")]
    thread = ss.latencies_ms(LatencyKind.THREAD_INTERRUPT, priority=28)
    relaxed = pseudo_worst_case_ms(thread, ss.duration_s, allowed_misses_per_hour=3600.0)
    absolute = max(thread)
    assert relaxed < absolute / 3.0
