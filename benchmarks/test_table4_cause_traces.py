"""Table 4: latency-cause tool output, Win98 office + default sound scheme.

Reproduces the experiment of section 4.4: run Business Winstone on Windows
98 with the default sound scheme, report thread latencies over a threshold,
and dump per-episode module+function traces.  The paper's sample episodes
catch SYSAUDIO ``_ProcessTopologyConnection``, VMM ``_mmCalcFrameBadness``/
``_mmFindContig``, NTKERN ``_ExpAllocatePool`` and KMIXER.
"""

import pytest

from repro.analysis.causes import summarize_episodes
from repro.core.experiment import build_loaded_os
from repro.drivers.cause_tool import LatencyCauseTool
from repro.drivers.latency import LatencyToolConfig, WdmLatencyTool
from repro.workloads.perturbations import DEFAULT_SOUND_SCHEME
from benchmarks.conftest import bench_duration_s, bench_seed, write_result


@pytest.fixture(scope="module")
def cause_run():
    os, _ = build_loaded_os(
        "win98", "office", seed=bench_seed(), extra_profile=DEFAULT_SOUND_SCHEME
    )
    tool = WdmLatencyTool(os, LatencyToolConfig())
    cause = LatencyCauseTool(tool, threshold_ms=3.0)
    tool.start()
    os.machine.run_for_ms(bench_duration_s() * 1000.0)
    return cause


def test_table4_regeneration(cause_run, benchmark):
    report = cause_run.format_report(limit=6)
    summary = summarize_episodes(cause_run.episodes)
    write_result(
        "table4_cause_traces.txt",
        report + "\n\nAggregate:\n" + summary.format(),
    )
    benchmark(lambda: summarize_episodes(cause_run.episodes))


def test_episodes_were_captured(cause_run):
    assert len(cause_run.episodes) >= 3


def test_sound_scheme_modules_appear_in_traces(cause_run):
    """The paper's traces finger SysAudio/VMM audio-frame work."""
    summary = summarize_episodes(cause_run.episodes)
    seen_modules = set(summary.by_module)
    assert "SYSAUDIO" in seen_modules or "KMIXER" in seen_modules
    assert "VMM" in seen_modules


def test_paper_functions_present(cause_run):
    summary = summarize_episodes(cause_run.episodes)
    functions = {f for (_, f) in summary.by_function}
    expected = {"_ProcessTopologyConnection", "_mmCalcFrameBadness", "unknown"}
    assert functions & expected


def test_episode_format_matches_paper_shape(cause_run):
    text = cause_run.episodes[0].format()
    assert text.startswith("Analysis of latency episode number")
    assert "total samples in episode" in text
