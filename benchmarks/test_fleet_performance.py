"""Fleet-tier performance: routed throughput under wide concurrency.

The headline number for BENCH_sim.json:

* ``fleet_routed_rps`` -- sustained served requests/second and
  client-side p99 latency through a real router fronting 3 workers, with
  100 concurrent async clients.  The router's own store is disabled
  (``cache_dir=None``, ``hot_capacity=0``) so *every* request takes the
  full admit -> shard -> forward -> relay path; the workers serve
  cache-hot, so the number isolates the routing tier's overhead rather
  than simulation cost.

Thresholds are deliberately loose (CI-shared runners); the recorded
numbers are the real output.
"""

import asyncio
import time

from repro.core.experiment import ExperimentConfig
from repro.fleet import AsyncServiceClient, RouterThread
from repro.service import ServiceClient, ServiceThread

from .test_sim_performance import record_measurement

WORKERS = 3
CLIENTS = 100
REQUESTS_PER_CLIENT = 5

#: Distinct cells spread across the ring so every worker takes forwards.
CELLS = [
    ExperimentConfig(os_name=os_name, workload="office",
                     duration_s=0.5, seed=seed)
    for os_name in ("win98", "nt4")
    for seed in (1999, 2000, 2001, 2002, 2003)
]


def _wait_live(port, expected, deadline_s=30.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        with ServiceClient(port=port) as client:
            if client.fleet_stats()["registry"]["live"] >= expected:
                return
        time.sleep(0.05)
    raise AssertionError(f"fleet never reached {expected} live workers")


def test_routed_sustained_rps_and_p99(tmp_path):
    # Quotas and lane bounds sized out of the way: this measures routing
    # throughput, not admission shedding (tests/test_fleet.py owns that).
    router = RouterThread(
        cache_dir=None, hot_capacity=0,
        client_rate=1e6, client_burst=1e6, interactive_inflight=1024,
    ).start()
    workers = [
        ServiceThread(
            cache_dir=tmp_path,
            register_with=f"127.0.0.1:{router.port}",
            worker_name=f"bench-w{i}",
        ).start()
        for i in range(WORKERS)
    ]
    latencies = []

    async def one_client(index):
        async with AsyncServiceClient(port=router.port, pool_size=2,
                                      client_id=f"bench-c{index}") as client:
            for round_index in range(REQUESTS_PER_CLIENT):
                cell = CELLS[(index + round_index) % len(CELLS)]
                t0 = time.perf_counter()
                await client.submit(cell, as_text=True)
                latencies.append(time.perf_counter() - t0)

    async def drive():
        await asyncio.gather(*(one_client(i) for i in range(CLIENTS)))

    try:
        _wait_live(router.port, WORKERS)
        with ServiceClient(port=router.port) as client:
            for cell in CELLS:  # simulate each cell once, warming workers
                client.submit(cell)
        t0 = time.perf_counter()
        asyncio.run(drive())
        elapsed = time.perf_counter() - t0
        with ServiceClient(port=router.port) as client:
            stats = client.stats()
            fleet = client.fleet_stats()
    finally:
        for worker in workers:
            worker.stop()
        router.stop()

    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(latencies) == total
    rps = total / elapsed
    latencies.sort()
    p50_ms = latencies[total // 2] * 1000
    p99_ms = latencies[int(total * 0.99) - 1] * 1000
    forwards = {w["name"]: w["forwards"]
                for w in fleet["registry"]["workers"]}
    assert stats["counters"]["shed_quota"] == 0
    assert stats["counters"]["shed_lane"] == 0
    assert all(count > 0 for count in forwards.values()), \
        f"a worker took no forwards: {forwards}"
    record_measurement(
        "fleet_routed_rps",
        workers=WORKERS,
        clients=CLIENTS,
        requests=total,
        wall_s=round(elapsed, 4),
        requests_per_sec=round(rps, 1),
        p50_ms=round(p50_ms, 3),
        p99_ms=round(p99_ms, 3),
        forwarded=stats["counters"]["forwarded"],
    )
    # Conservative floors: a loaded CI box routes hundreds/sec; a
    # regression to per-request simulation would be an order slower.
    assert rps >= 50, f"routed serving only {rps:.0f} req/s"
    assert p99_ms < 5000, f"routed p99 {p99_ms:.0f} ms"
