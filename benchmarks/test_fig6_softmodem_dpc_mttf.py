"""Figure 6: MTTF to buffer underrun, DPC-based soft-modem datapump, Win98.

Two reproductions of the same curve:

1. **Analytic** (the paper's own derivation): slack indexed into the
   measured Win98 DPC-interrupt-latency distribution, per workload.
2. **Direct simulation** (the section 6.1 modelling tool): run the
   DPC-based datapump on the loaded kernel and count real underruns --
   cross-validating the analytic curve.

Paper readings checked: MTTF rises steeply with buffering; under an
"average" 3D game ~12 ms of buffering gives minutes between misses while
~20 ms gives about an hour.
"""

import pytest

from repro.analysis.mttf import mttf_curve
from repro.core.samples import LatencyKind
from repro.core.worst_case import DEFAULT_TIME_COMPRESSION
from repro.drivers.softmodem import DatapumpConfig, SoftModemDatapump
from repro.core.experiment import build_loaded_os
from benchmarks.conftest import WORKLOADS, bench_seed, write_result

COMPUTE_MS = 2.0  # 25% of a mid-range 8 ms datapump cycle


@pytest.fixture(scope="module")
def curves(matrix):
    out = {}
    for workload in WORKLOADS:
        sample_set = matrix[("win98", workload)]
        latencies = sample_set.latencies_ms(LatencyKind.DPC_INTERRUPT)
        out[workload] = mttf_curve(latencies, compute_ms=COMPUTE_MS)
    return out


def test_figure6_regeneration(curves, matrix, benchmark):
    from repro.analysis.charts import mttf_chart

    blocks = ["Figure 6: MTTF (s) of DPC-based softmodem datapump on Windows 98"]
    for workload in WORKLOADS:
        blocks.append(f"\n-- {workload} --")
        for point in curves[workload]:
            blocks.append(point.format())
    blocks.append("")
    blocks.append(mttf_chart(curves))
    write_result("figure6_softmodem_dpc_mttf.txt", "\n".join(blocks))

    # Inline shape check: MTTF at 32 ms of buffering beats MTTF at 8 ms.
    games = {p.buffering_ms: p.mttf_s for p in curves["games"]}
    low, high = games.get(8.0), games.get(32.0)
    assert high is None or (low is not None and high >= low)

    latencies = matrix[("win98", "games")].latencies_ms(LatencyKind.DPC_INTERRUPT)
    benchmark(lambda: mttf_curve(latencies, compute_ms=COMPUTE_MS))


@pytest.mark.parametrize("workload", WORKLOADS)
def test_mttf_rises_with_buffering(curves, workload):
    finite = [p for p in curves[workload] if p.mttf_s is not None]
    if len(finite) < 2:
        pytest.skip("distribution too clean at this run length")
    assert finite[-1].mttf_s >= finite[0].mttf_s


def test_games_needs_tens_of_ms_for_an_hour(curves):
    """Figure 6 reading: ~20 ms of buffering for an hourly MTTF in games."""
    for point in curves["games"]:
        if point.mttf_s is None or point.mttf_s >= 3600.0:
            assert 8.0 <= point.buffering_ms <= 64.0
            break
    else:
        pytest.fail("no buffering in range reached one hour MTTF")


def test_office_easier_than_games(curves):
    """Office reaches hourly MTTF with less buffering than games."""

    def first_hourly(workload):
        for point in curves[workload]:
            if point.mttf_s is None or point.mttf_s >= 3600.0:
                return point.buffering_ms
        return float("inf")

    assert first_hourly("office") <= first_hourly("games")


def test_direct_simulation_cross_check(matrix):
    """The section 6.1 tool agrees with the analytic curve within an order
    of magnitude at a miss-heavy operating point."""
    os, _ = build_loaded_os("win98", "games", seed=bench_seed())
    pump = SoftModemDatapump(
        os, DatapumpConfig(cycle_ms=8.0, n_buffers=2, modality="dpc")
    )
    pump.start()
    os.machine.run_for_ms(60_000)
    report = pump.report()

    latencies = matrix[("win98", "games")].latencies_ms(LatencyKind.DPC_INTERRUPT)
    from repro.analysis.mttf import mttf_for_buffering

    analytic = mttf_for_buffering(
        latencies, buffering_ms=8.0, compute_ms=2.0, time_compression=1.0
    )
    if report.misses == 0:
        assert analytic.p_miss < 1e-3
    else:
        simulated_mttf = report.duration_s / report.misses
        assert analytic.mttf_s is not None
        ratio = simulated_mttf / analytic.mttf_s
        assert 0.05 < ratio < 20.0
