"""Extension bench: thread latency as a function of RT priority.

Sweeps the measurement thread's real-time priority across 16..31 on NT 4.0
under the games load and regenerates the latency-vs-priority profile.  The
paper's explanation of the Figure 4 NT panels predicts a *cliff at exactly
24*: any priority above the work-item servicing thread preempts it freely,
any priority at or below it queues behind multi-millisecond work items.
"""

import pytest

from repro.core.experiment import build_loaded_os
from repro.core.stats import percentile
from repro.drivers.latency import LatencyToolConfig, WdmLatencyTool
from benchmarks.conftest import bench_duration_s, bench_seed, write_result

PRIORITIES = (16, 20, 23, 24, 25, 28, 31)


@pytest.fixture(scope="module")
def sweep():
    duration_ms = min(bench_duration_s(), 60.0) * 1000.0
    os, _ = build_loaded_os("nt4", "games", seed=bench_seed())
    tool = WdmLatencyTool(os, LatencyToolConfig(thread_priorities=PRIORITIES))
    tool.start()
    os.machine.run_for_ms(duration_ms)
    sample_set = tool.collect("games")
    from repro.core.samples import LatencyKind

    profile = {}
    for priority in PRIORITIES:
        values = sorted(sample_set.latencies_ms(LatencyKind.THREAD, priority=priority))
        profile[priority] = {
            "p99": percentile(values, 0.99),
            "max": values[-1],
            "n": len(values),
        }
    return profile


def test_priority_sweep_regeneration(sweep, benchmark):
    rows = [f"{'priority':>8s} {'p99 (ms)':>10s} {'max (ms)':>10s} {'samples':>8s}"]
    for priority in PRIORITIES:
        cell = sweep[priority]
        rows.append(
            f"{priority:8d} {cell['p99']:10.3f} {cell['max']:10.3f} {cell['n']:8d}"
        )
    write_result("nt4_priority_sweep.txt", "\n".join(rows))

    # The cliff: everything <= 24 is far worse than everything >= 25.
    below = max(sweep[p]["max"] for p in (16, 20, 23, 24))
    above = max(sweep[p]["max"] for p in (25, 28, 31))
    assert below > 3.0 * above
    benchmark(lambda: sorted(sweep))


def test_priorities_below_worker_all_comparable(sweep):
    """16..24 all queue behind the same work items; no cliff among them."""
    maxima = [sweep[p]["max"] for p in (16, 20, 23, 24)]
    assert max(maxima) < 30.0 * min(maxima)


def test_priorities_above_worker_all_fast(sweep):
    for priority in (25, 28, 31):
        assert sweep[priority]["max"] < 5.0
