"""Table 3: Windows 98 expected hourly/daily/weekly worst-case latencies.

Regenerates the full table (7 service rows x 4 workloads x 3 horizons) and
checks the reproduction bands: each regenerated cell should land within a
small factor of the paper's value -- the substrate is a calibrated
simulator, so we assert the *shape* (orderings, ballpark magnitudes), not
cycle-exact equality.
"""

import pytest

from repro.core.samples import LatencyKind
from repro.core.worst_case import WorstCaseTable
from benchmarks.conftest import WORKLOADS, write_result

#: Table 3 verbatim: (kind, priority) -> workload -> (hr, day, wk) ms.
PAPER_TABLE3 = {
    (LatencyKind.ISR, None): {
        "office": (1.0, 1.4, 1.6),
        "workstation": (2.2, 5.6, 6.3),
        "games": (8.8, 9.7, 12.2),
        "web": (1.1, 1.7, 3.5),
    },
    (LatencyKind.DPC_INTERRUPT, None): {
        "office": (1.0, 1.5, 2.0),
        "workstation": (2.7, 6.1, 6.9),
        "games": (9.7, 12.0, 14.0),
        "web": (1.3, 2.0, 3.8),
    },
    (LatencyKind.THREAD, 28): {
        "office": (1.6, 5.2, 31.0),
        "workstation": (21.0, 24.0, 24.0),
        "games": (35.0, 46.0, 70.0),
        "web": (14.0, 68.0, 80.0),
    },
    (LatencyKind.THREAD, 24): {
        "office": (3.1, 6.7, 31.0),
        "workstation": (21.0, 23.0, 24.0),
        "games": (36.0, 47.0, 70.0),
        "web": (51.0, 68.0, 80.0),
    },
}


@pytest.fixture(scope="module")
def tables(matrix):
    return {
        workload: WorstCaseTable(matrix[("win98", workload)])
        for workload in WORKLOADS
    }


def test_table3_regeneration(tables, matrix, benchmark):
    blocks = []
    for workload in WORKLOADS:
        blocks.append(tables[workload].format())
        blocks.append("")
    write_result("table3_win98_worst_case.txt", "\n".join(blocks))
    # Inline shape checks for --benchmark-only runs.
    weekly_isr = {
        w: tables[w].row(LatencyKind.ISR, None).max_per_week_ms for w in WORKLOADS
    }
    assert weekly_isr["games"] == max(weekly_isr.values())
    for workload in WORKLOADS:
        row = tables[workload]
        assert row.row(LatencyKind.THREAD, 28).max_per_week_ms > row.row(
            LatencyKind.DPC_INTERRUPT, None
        ).max_per_week_ms
    benchmark(lambda: WorstCaseTable(matrix[("win98", "office")]))


@pytest.mark.parametrize("workload", WORKLOADS)
def test_hourly_values_in_band(tables, workload):
    """Hourly cells (interpolated from data) within ~3x of the paper."""
    for (kind, priority), per_workload in PAPER_TABLE3.items():
        paper_hr = per_workload[workload][0]
        row = tables[workload].row(kind, priority)
        assert row is not None
        assert row.max_per_hour_ms == pytest.approx(paper_hr, rel=2.0), (
            f"{workload}/{kind.value}/{priority}: measured {row.max_per_hour_ms:.2f} "
            f"vs paper {paper_hr}"
        )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_horizon_monotonicity(tables, workload):
    for row in tables[workload].rows:
        assert row.max_per_hour_ms <= row.max_per_day_ms + 1e-9
        assert row.max_per_day_ms <= row.max_per_week_ms + 1e-9


def test_cross_workload_isr_ordering(tables):
    """Games >> workstation > web/office for ISR latency (Table 3)."""
    weekly = {
        w: tables[w].row(LatencyKind.ISR, None).max_per_week_ms for w in WORKLOADS
    }
    assert weekly["games"] > weekly["workstation"] > weekly["office"]
    assert weekly["games"] > weekly["web"]


def test_dpc_adds_small_increment_over_isr(tables):
    """The 'S/W ISR to DPC' component is a fraction of the ISR one."""
    for workload in WORKLOADS:
        isr = tables[workload].row(LatencyKind.ISR, None).max_per_week_ms
        dpc_int = tables[workload].row(LatencyKind.DPC_INTERRUPT, None).max_per_week_ms
        assert dpc_int >= isr - 1e-9
        assert dpc_int <= isr + 6.0  # the paper's largest DPC add is +2.1


def test_thread_rows_dwarf_dpc_rows(tables):
    """On Win98, thread service is ~an order of magnitude worse."""
    for workload in WORKLOADS:
        dpc_int = tables[workload].row(LatencyKind.DPC_INTERRUPT, None).max_per_week_ms
        thread = tables[workload].row(LatencyKind.THREAD, 28).max_per_week_ms
        assert thread > 2.0 * dpc_int, workload
