"""Extension bench: the section 1.2 contrast with interactive latency.

Endo et al. measured keystroke/mouse response; adequacy is 50-150 ms.  The
paper's point: that lens cannot resolve the real-time difference between
the OSes.  Regenerates the keystroke-echo distributions on both kernels
under the games load and asserts the contrast.
"""

import pytest

from repro.core.experiment import build_loaded_os
from repro.core.samples import LatencyKind
from repro.drivers.interactive import InteractiveConfig, KeystrokeEchoDriver
from benchmarks.conftest import bench_duration_s, bench_seed, write_result


@pytest.fixture(scope="module")
def echoes():
    duration_ms = min(bench_duration_s(), 90.0) * 1000.0
    reports = {}
    for os_name in ("nt4", "win98"):
        os, _ = build_loaded_os(os_name, "games", seed=bench_seed())
        driver = KeystrokeEchoDriver(
            os, InteractiveConfig(keystrokes_per_second=10.0), seed=bench_seed()
        )
        driver.start()
        os.machine.run_for_ms(duration_ms)
        reports[os_name] = driver.report()
    return reports


def test_interactive_contrast_regeneration(echoes, matrix, benchmark):
    nt_rt = max(matrix[("nt4", "games")].latencies_ms(LatencyKind.THREAD, priority=28))
    w98_rt = max(matrix[("win98", "games")].latencies_ms(LatencyKind.THREAD, priority=28))
    lines = [
        "Interactive (keystroke-echo) latency under the games load:",
        f"  nt4  : {echoes['nt4'].format()}",
        f"  win98: {echoes['win98'].format()}",
        "",
        "Real-time (priority-28 thread) latency on the same kernels:",
        f"  nt4  worst: {nt_rt:8.2f} ms",
        f"  win98 worst: {w98_rt:8.2f} ms   ({w98_rt / nt_rt:.0f}x worse)",
        "",
        "Both OSes clear Shneiderman's 50-150 ms interactive bar; only the",
        "latency-distribution metrics expose the real-time gulf.",
    ]
    write_result("interactive_contrast.txt", "\n".join(lines))

    # Both responsive; RT ratio dwarfs interactive ratio.
    for report in echoes.values():
        assert report.fraction_over(150.0) < 0.05
    interactive_ratio = echoes["win98"].summary.p99 / max(echoes["nt4"].summary.p99, 1e-9)
    assert (w98_rt / nt_rt) > 3.0 * interactive_ratio
    benchmark(lambda: echoes["win98"].summary)
