"""Benchmark harness: one module per table/figure of the paper.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the regenerated
tables and figures; persistent copies land in ``benchmarks/results/``.
Campaign length per cell is set by ``REPRO_BENCH_DURATION_S`` (default 120
simulated seconds; 600 for publication-quality tails).
"""
