#!/usr/bin/env python
"""cProfile harness for the simulator's hot path.

Runs one loaded experiment cell (Windows 98 or NT 4.0 personality under a
calibrated stress workload) under cProfile and prints the top-N functions
by cumulative time, plus the same table by internal time.  This is the
profile that drove the ISSUE-2 dispatch fast path; keep it handy so future
"the simulator feels slow" reports start from data.

Besides the human-readable tables, ``--json`` writes a machine-readable
report whose per-function *call counts per simulated second* are fully
deterministic for a fixed (os, workload, duration, seed) cell -- unlike
wall-clock timings, which are useless on noisy shared runners.  That is
what ``benchmarks/test_call_budget.py`` gates on, against the checked-in
budget written by ``--write-budget``.

Usage::

    PYTHONPATH=src python tools/profile_sim.py
    PYTHONPATH=src python tools/profile_sim.py --os nt4 --workload office \\
        --duration-s 4 --top 30 --output profile_report.txt
    PYTHONPATH=src python tools/profile_sim.py --json profile_report.json
    PYTHONPATH=src python tools/profile_sim.py --write-budget \\
        benchmarks/call_budget.json
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.experiment import build_loaded_os  # noqa: E402


def profile_cell(os_name: str, workload: str, duration_s: float, seed: int):
    """Profile ``duration_s`` simulated seconds of one loaded cell.

    The OS build/boot happens outside the profiled region so the report
    shows steady-state dispatch costs, not one-time setup.  Returns
    ``(profiler, booted_os)`` so callers can read post-run engine counters
    (fast-forward spans, tape vs interpreted frames).
    """
    os, _ = build_loaded_os(os_name, workload, seed=seed)
    profiler = cProfile.Profile()
    profiler.enable()
    os.machine.run_for_ms(duration_s * 1000.0)
    profiler.disable()
    return profiler, os


def _repro_key(filename: str, funcname: str) -> str | None:
    """``"kernel/kernel.py:_run_complete"`` for functions under src/repro."""
    marker = "repro/"
    pos = filename.rfind(marker)
    if pos < 0:
        return None
    return f"{filename[pos + len(marker):]}:{funcname}"


def call_counts(os_name: str, workload: str, duration_s: float, seed: int) -> dict:
    """Deterministic per-function call rates for one profiled cell.

    Returns ``{"config": ..., "total_repro_calls_per_sim_s": float,
    "functions": {key: {"calls": int, "calls_per_sim_s": float,
    "tottime_s": float}}}`` covering every function under ``src/repro``.
    The call counts depend only on the simulated event stream (which is
    seeded), so they are bit-stable across runs and machines; ``tottime_s``
    is informational only.  A ``fast_forward`` section reports the
    engine's virtual-time counters for the profiled run: idle spans
    analytically settled, PIT ticks batch-settled inside them, and how
    many frames executed from a compiled tape vs the generator
    interpreter (all equally deterministic for a fixed cell).
    """
    profiler, os = profile_cell(os_name, workload, duration_s, seed)
    engine = os.machine.engine
    functions: dict = {}
    total_calls = 0
    for (filename, _lineno, funcname), (_cc, nc, tt, _ct, _callers) in pstats.Stats(
        profiler
    ).stats.items():
        key = _repro_key(filename, funcname)
        if key is None:
            continue
        entry = functions.setdefault(
            key, {"calls": 0, "calls_per_sim_s": 0.0, "tottime_s": 0.0}
        )
        entry["calls"] += nc
        entry["calls_per_sim_s"] = round(entry["calls"] / duration_s, 2)
        entry["tottime_s"] = round(entry["tottime_s"] + tt, 6)
        total_calls += nc
    return {
        "config": {
            "os": os_name,
            "workload": workload,
            "duration_s": duration_s,
            "seed": seed,
        },
        "total_repro_calls": total_calls,
        "total_repro_calls_per_sim_s": round(total_calls / duration_s, 2),
        "fast_forward": {
            "spans_fast_forwarded": engine.spans_fast_forwarded,
            "ticks_fast_forwarded": engine.ticks_fast_forwarded,
            "tape_frames": engine.tape_frames,
            "interpreted_frames": engine.interpreted_frames,
        },
        "functions": dict(
            sorted(functions.items(), key=lambda kv: -kv[1]["calls"])
        ),
    }


#: Cells the call-budget gate covers: the loaded win98/games cell that
#: exercises every dispatch path, plus an idle cell where the virtual-time
#: fast-forward should be settling nearly every tick (a regression that
#: disables fast-forward shows up as a call-rate explosion there).
BUDGET_CELLS = (
    ("win98", "games", 2.0, 1),
    ("nt4", "idle", 2.0, 1),
)


def write_budget(path: Path, top: int = 25) -> None:
    """Write the call-budget file ``benchmarks/test_call_budget.py`` gates on.

    Profiles every cell in :data:`BUDGET_CELLS` and keeps each cell's
    ``top`` highest-traffic functions; the test allows 20% headroom over
    each recorded rate before failing.
    """
    cells = {}
    for os_name, workload, duration_s, seed in BUDGET_CELLS:
        counts = call_counts(os_name, workload, duration_s, seed)
        ranked = list(counts["functions"].items())[:top]
        cells[f"{os_name}/{workload}"] = {
            "config": counts["config"],
            "total_repro_calls_per_sim_s": counts["total_repro_calls_per_sim_s"],
            "fast_forward": counts["fast_forward"],
            "functions": {key: entry["calls_per_sim_s"] for key, entry in ranked},
        }
    path.write_text(json.dumps({"cells": cells}, indent=2, sort_keys=True) + "\n")


def format_report(profiler: cProfile.Profile, top: int) -> str:
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    buffer.write(f"== top {top} by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    buffer.write(f"\n== top {top} by internal time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    return buffer.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--os", dest="os_name", default="win98", choices=("win98", "nt4"))
    parser.add_argument("--workload", default="games",
                        choices=("office", "workstation", "games", "web", "idle"))
    parser.add_argument("--duration-s", type=float, default=2.0,
                        help="simulated seconds to profile (default: 2)")
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")
    parser.add_argument("--top", type=int, default=20,
                        help="functions per table (default: 20)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the report to this file")
    parser.add_argument("--json", type=Path, default=None,
                        help="write a machine-readable call-count report "
                             "(deterministic calls/sim-s) to this file")
    parser.add_argument("--write-budget", type=Path, default=None,
                        help="write/refresh the call-budget file used by "
                             "benchmarks/test_call_budget.py")
    args = parser.parse_args(argv)

    if args.json is not None or args.write_budget is not None:
        if args.json is not None:
            counts = call_counts(args.os_name, args.workload, args.duration_s, args.seed)
            args.json.write_text(json.dumps(counts, indent=2) + "\n")
            print(f"call-count report written to {args.json}")
        if args.write_budget is not None:
            # The budget always covers the fixed BUDGET_CELLS matrix, not
            # the --os/--workload selection, so a refresh can never
            # silently narrow the gate.
            write_budget(args.write_budget)
            print(f"call budget written to {args.write_budget}")
        return 0

    profiler, os = profile_cell(args.os_name, args.workload, args.duration_s, args.seed)
    engine = os.machine.engine
    header = (
        f"profile: {args.os_name}/{args.workload} duration_s={args.duration_s} "
        f"seed={args.seed}\n"
    )
    ff_line = (
        f"fast-forward: {engine.spans_fast_forwarded} spans, "
        f"{engine.ticks_fast_forwarded} ticks settled; frames: "
        f"{engine.tape_frames} tape, {engine.interpreted_frames} interpreted\n"
    )
    report = header + ff_line + format_report(profiler, args.top)
    print(report)
    if args.output is not None:
        args.output.write_text(report)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
