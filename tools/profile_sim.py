#!/usr/bin/env python
"""cProfile harness for the simulator's hot path.

Runs one loaded experiment cell (Windows 98 or NT 4.0 personality under a
calibrated stress workload) under cProfile and prints the top-N functions
by cumulative time, plus the same table by internal time.  This is the
profile that drove the ISSUE-2 dispatch fast path; keep it handy so future
"the simulator feels slow" reports start from data.

Besides the human-readable tables, ``--json`` writes a machine-readable
report whose per-function *call counts per simulated second* are fully
deterministic for a fixed (os, workload, duration, seed) cell -- unlike
wall-clock timings, which are useless on noisy shared runners.  That is
what ``benchmarks/test_call_budget.py`` gates on, against the checked-in
budget written by ``--write-budget``.

Usage::

    PYTHONPATH=src python tools/profile_sim.py
    PYTHONPATH=src python tools/profile_sim.py --os nt4 --workload office \\
        --duration-s 4 --top 30 --output profile_report.txt
    PYTHONPATH=src python tools/profile_sim.py --json profile_report.json
    PYTHONPATH=src python tools/profile_sim.py --write-budget \\
        benchmarks/call_budget.json
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.experiment import build_loaded_os  # noqa: E402


def profile_cell(os_name: str, workload: str, duration_s: float, seed: int) -> cProfile.Profile:
    """Profile ``duration_s`` simulated seconds of one loaded cell.

    The OS build/boot happens outside the profiled region so the report
    shows steady-state dispatch costs, not one-time setup.
    """
    os, _ = build_loaded_os(os_name, workload, seed=seed)
    profiler = cProfile.Profile()
    profiler.enable()
    os.machine.run_for_ms(duration_s * 1000.0)
    profiler.disable()
    return profiler


def _repro_key(filename: str, funcname: str) -> str | None:
    """``"kernel/kernel.py:_run_complete"`` for functions under src/repro."""
    marker = "repro/"
    pos = filename.rfind(marker)
    if pos < 0:
        return None
    return f"{filename[pos + len(marker):]}:{funcname}"


def call_counts(os_name: str, workload: str, duration_s: float, seed: int) -> dict:
    """Deterministic per-function call rates for one profiled cell.

    Returns ``{"config": ..., "total_repro_calls_per_sim_s": float,
    "functions": {key: {"calls": int, "calls_per_sim_s": float,
    "tottime_s": float}}}`` covering every function under ``src/repro``.
    The call counts depend only on the simulated event stream (which is
    seeded), so they are bit-stable across runs and machines; ``tottime_s``
    is informational only.
    """
    profiler = profile_cell(os_name, workload, duration_s, seed)
    functions: dict = {}
    total_calls = 0
    for (filename, _lineno, funcname), (_cc, nc, tt, _ct, _callers) in pstats.Stats(
        profiler
    ).stats.items():
        key = _repro_key(filename, funcname)
        if key is None:
            continue
        entry = functions.setdefault(
            key, {"calls": 0, "calls_per_sim_s": 0.0, "tottime_s": 0.0}
        )
        entry["calls"] += nc
        entry["calls_per_sim_s"] = round(entry["calls"] / duration_s, 2)
        entry["tottime_s"] = round(entry["tottime_s"] + tt, 6)
        total_calls += nc
    return {
        "config": {
            "os": os_name,
            "workload": workload,
            "duration_s": duration_s,
            "seed": seed,
        },
        "total_repro_calls": total_calls,
        "total_repro_calls_per_sim_s": round(total_calls / duration_s, 2),
        "functions": dict(
            sorted(functions.items(), key=lambda kv: -kv[1]["calls"])
        ),
    }


def write_budget(counts: dict, path: Path, top: int = 25) -> None:
    """Write the call-budget file ``benchmarks/test_call_budget.py`` gates on.

    Keeps the ``top`` highest-traffic functions; the test allows 20%
    headroom over each recorded rate before failing.
    """
    ranked = list(counts["functions"].items())[:top]
    budget = {
        "config": counts["config"],
        "total_repro_calls_per_sim_s": counts["total_repro_calls_per_sim_s"],
        "functions": {key: entry["calls_per_sim_s"] for key, entry in ranked},
    }
    path.write_text(json.dumps(budget, indent=2, sort_keys=True) + "\n")


def format_report(profiler: cProfile.Profile, top: int) -> str:
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    buffer.write(f"== top {top} by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    buffer.write(f"\n== top {top} by internal time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    return buffer.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--os", dest="os_name", default="win98", choices=("win98", "nt4"))
    parser.add_argument("--workload", default="games",
                        choices=("office", "workstation", "games", "web"))
    parser.add_argument("--duration-s", type=float, default=2.0,
                        help="simulated seconds to profile (default: 2)")
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")
    parser.add_argument("--top", type=int, default=20,
                        help="functions per table (default: 20)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the report to this file")
    parser.add_argument("--json", type=Path, default=None,
                        help="write a machine-readable call-count report "
                             "(deterministic calls/sim-s) to this file")
    parser.add_argument("--write-budget", type=Path, default=None,
                        help="write/refresh the call-budget file used by "
                             "benchmarks/test_call_budget.py")
    args = parser.parse_args(argv)

    if args.json is not None or args.write_budget is not None:
        counts = call_counts(args.os_name, args.workload, args.duration_s, args.seed)
        if args.json is not None:
            args.json.write_text(json.dumps(counts, indent=2) + "\n")
            print(f"call-count report written to {args.json}")
        if args.write_budget is not None:
            write_budget(counts, args.write_budget)
            print(f"call budget written to {args.write_budget}")
        return 0

    profiler = profile_cell(args.os_name, args.workload, args.duration_s, args.seed)
    header = (
        f"profile: {args.os_name}/{args.workload} duration_s={args.duration_s} "
        f"seed={args.seed}\n"
    )
    report = header + format_report(profiler, args.top)
    print(report)
    if args.output is not None:
        args.output.write_text(report)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
