#!/usr/bin/env python
"""cProfile harness for the simulator's hot path.

Runs one loaded experiment cell (Windows 98 or NT 4.0 personality under a
calibrated stress workload) under cProfile and prints the top-N functions
by cumulative time, plus the same table by internal time.  This is the
profile that drove the ISSUE-2 dispatch fast path; keep it handy so future
"the simulator feels slow" reports start from data.

Usage::

    PYTHONPATH=src python tools/profile_sim.py
    PYTHONPATH=src python tools/profile_sim.py --os nt4 --workload office \\
        --duration-s 4 --top 30 --output profile_report.txt
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.experiment import build_loaded_os  # noqa: E402


def profile_cell(os_name: str, workload: str, duration_s: float, seed: int) -> cProfile.Profile:
    """Profile ``duration_s`` simulated seconds of one loaded cell.

    The OS build/boot happens outside the profiled region so the report
    shows steady-state dispatch costs, not one-time setup.
    """
    os, _ = build_loaded_os(os_name, workload, seed=seed)
    profiler = cProfile.Profile()
    profiler.enable()
    os.machine.run_for_ms(duration_s * 1000.0)
    profiler.disable()
    return profiler


def format_report(profiler: cProfile.Profile, top: int) -> str:
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    buffer.write(f"== top {top} by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    buffer.write(f"\n== top {top} by internal time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    return buffer.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--os", dest="os_name", default="win98", choices=("win98", "nt4"))
    parser.add_argument("--workload", default="games",
                        choices=("office", "workstation", "games", "web"))
    parser.add_argument("--duration-s", type=float, default=2.0,
                        help="simulated seconds to profile (default: 2)")
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")
    parser.add_argument("--top", type=int, default=20,
                        help="functions per table (default: 20)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    profiler = profile_cell(args.os_name, args.workload, args.duration_s, args.seed)
    header = (
        f"profile: {args.os_name}/{args.workload} duration_s={args.duration_s} "
        f"seed={args.seed}\n"
    )
    report = header + format_report(profiler, args.top)
    print(report)
    if args.output is not None:
        args.output.write_text(report)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
