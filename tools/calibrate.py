#!/usr/bin/env python
"""Calibration helper: measured vs Table 3 target worst cases.

Runs the OS x workload matrix and prints, for each latency row, the
measured hourly/daily/weekly worst case next to the paper's target.  Used
while tuning the workload profiles in src/repro/workloads/.

Usage: python tools/calibrate.py [duration_s] [os ...] [workload ...]
"""

import sys
import time

from repro.core.experiment import ExperimentConfig, run_latency_experiment
from repro.core.samples import LatencyKind
from repro.core.worst_case import WorstCaseTable

# Table 3 (win98) and Figure 4 / section 4.2 (nt4) targets:
# (kind, priority) -> (max/hr, max/day, max/wk) in ms.
TARGETS = {
    ("win98", "office"): {
        (LatencyKind.ISR, None): (1.0, 1.4, 1.6),
        (LatencyKind.DPC_INTERRUPT, None): (1.0, 1.5, 2.0),
        (LatencyKind.THREAD, 28): (1.6, 5.2, 31.0),
        (LatencyKind.THREAD, 24): (3.1, 6.7, 31.0),
    },
    ("win98", "workstation"): {
        (LatencyKind.ISR, None): (2.2, 5.6, 6.3),
        (LatencyKind.DPC_INTERRUPT, None): (2.7, 6.1, 6.9),
        (LatencyKind.THREAD, 28): (21.0, 24.0, 24.0),
        (LatencyKind.THREAD, 24): (21.0, 23.0, 24.0),
    },
    ("win98", "games"): {
        (LatencyKind.ISR, None): (8.8, 9.7, 12.2),
        (LatencyKind.DPC_INTERRUPT, None): (9.7, 12.0, 14.0),
        (LatencyKind.THREAD, 28): (35.0, 46.0, 70.0),
        (LatencyKind.THREAD, 24): (36.0, 47.0, 70.0),
    },
    ("win98", "web"): {
        (LatencyKind.ISR, None): (1.1, 1.7, 3.5),
        (LatencyKind.DPC_INTERRUPT, None): (1.3, 2.0, 3.8),
        (LatencyKind.THREAD, 28): (14.0, 68.0, 80.0),
        (LatencyKind.THREAD, 24): (51.0, 68.0, 80.0),
    },
    # NT 4.0: "worst case latencies uniformly below 3 ms" for DPC/high-RT;
    # priority 24 an order of magnitude worse (work-item thread).
    ("nt4", "office"): {
        (LatencyKind.DPC_INTERRUPT, None): (1.3, 1.6, 2.0),
        (LatencyKind.THREAD, 28): (0.3, 0.6, 1.0),
        (LatencyKind.THREAD, 24): (4.0, 8.0, 16.0),
    },
    ("nt4", "workstation"): {
        (LatencyKind.DPC_INTERRUPT, None): (1.5, 2.0, 2.5),
        (LatencyKind.THREAD, 28): (0.5, 1.0, 1.6),
        (LatencyKind.THREAD, 24): (8.0, 14.0, 20.0),
    },
    ("nt4", "games"): {
        (LatencyKind.DPC_INTERRUPT, None): (1.8, 2.3, 2.9),
        (LatencyKind.THREAD, 28): (0.6, 1.2, 2.0),
        (LatencyKind.THREAD, 24): (10.0, 16.0, 24.0),
    },
    ("nt4", "web"): {
        (LatencyKind.DPC_INTERRUPT, None): (1.4, 1.8, 2.2),
        (LatencyKind.THREAD, 28): (0.4, 0.8, 1.4),
        (LatencyKind.THREAD, 24): (6.0, 12.0, 20.0),
    },
}


def main():
    args = sys.argv[1:]
    duration = float(args[0]) if args and args[0].replace(".", "").isdigit() else 120.0
    rest = args[1:] if args and args[0].replace(".", "").isdigit() else args
    oses = [a for a in rest if a in ("nt4", "win98")] or ["win98", "nt4"]
    loads = [a for a in rest if a in ("office", "workstation", "games", "web")] or [
        "office", "workstation", "games", "web"]
    for os_name in oses:
        for workload in loads:
            t0 = time.time()
            result = run_latency_experiment(
                ExperimentConfig(os_name=os_name, workload=workload,
                                 duration_s=duration, seed=1999)
            )
            table = WorstCaseTable(result.sample_set)
            print(f"\n=== {os_name}/{workload}  ({time.time()-t0:.0f}s wall, "
                  f"{len(result.sample_set)} samples) ===")
            targets = TARGETS.get((os_name, workload), {})
            for row in table.rows:
                target = targets.get((row.kind, row.priority))
                tstr = (f"target {target[0]:7.1f} {target[1]:7.1f} {target[2]:7.1f}"
                        if target else "")
                print(f"{row.label:46s} {row.max_per_hour_ms:7.2f} {row.max_per_day_ms:7.2f} "
                      f"{row.max_per_week_ms:7.2f}   {tstr} (obs {row.observed_max_ms:.2f})")


if __name__ == "__main__":
    main()
