#!/usr/bin/env python
"""CI smoke for the fleet tier: router + 2 workers, failover, drain.

Boots a real ``python -m repro route`` subprocess plus two
``python -m repro serve --register`` worker subprocesses sharing one
result-store directory, then checks the fleet acceptance criteria over
real TCP:

1. Both workers register and go live on the router's hash ring.
2. A mixed batch submitted *through the router* is byte-identical to a
   serial ``run_campaign`` of the same configs.
3. SIGTERM of one worker drains cleanly (exit 0, drain banner) and a
   cell owned by the dead worker fails over to the survivor -- still
   byte-identical.
4. The shared cache directory ends consistent (no ``.tmp`` leftovers),
   and the surviving worker and the router both drain cleanly.

Exit status is non-zero on any violation, so CI can run this file
directly.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.campaign import cache_key, run_campaign  # noqa: E402
from repro.core.experiment import ExperimentConfig  # noqa: E402
from repro.core.export import sample_set_to_json  # noqa: E402
from repro.fleet import HashRing  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

DURATION_S = 1.0
BATCH = [
    ExperimentConfig(os_name="win98", workload="games",
                     duration_s=DURATION_S, seed=1999),
    ExperimentConfig(os_name="nt4", workload="office",
                     duration_s=DURATION_S, seed=1999),
    ExperimentConfig(os_name="win98", workload="office",
                     duration_s=DURATION_S, seed=2000),
]
WORKER_NAMES = ("w0", "w1")


def _spawn(argv, env):
    return subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


def _port_from_banner(process, what):
    banner = process.stdout.readline().strip()
    print(banner)
    assert "listening on" in banner, f"bad {what} banner: {banner!r}"
    return int(banner.rsplit(":", 1)[1])


def _wait_live(router_port, expected, deadline_s=30.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        with ServiceClient(port=router_port) as client:
            live = client.fleet_stats()["registry"]["live"]
        if live >= expected:
            return
        time.sleep(0.1)
    raise AssertionError(f"fleet never reached {expected} live workers")


def _drain(process, what):
    """SIGTERM ``process`` and assert the clean-drain contract."""
    process.send_signal(signal.SIGTERM)
    stdout, _ = process.communicate(timeout=120)
    tail = stdout.strip().splitlines()
    print(f"[{what}] " + (tail[-1] if tail else "<no output>"))
    assert process.returncode == 0, f"{what} exited {process.returncode}"
    assert "drained and closed" in stdout, f"no drain banner from {what}"


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    serial = [sample_set_to_json(s) for s in run_campaign(BATCH)]
    procs = []
    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as cache_dir:
        try:
            router = _spawn(
                [sys.executable, "-m", "repro", "route", "--port", "0",
                 "--cache-dir", cache_dir,
                 "--heartbeat-interval", "0.3", "--heartbeat-timeout", "3.0"],
                env,
            )
            procs.append(router)
            router_port = _port_from_banner(router, "router")

            workers = {}
            for name in WORKER_NAMES:
                worker = _spawn(
                    [sys.executable, "-m", "repro", "serve", "--port", "0",
                     "--cache-dir", cache_dir,
                     "--register", f"127.0.0.1:{router_port}",
                     "--name", name],
                    env,
                )
                procs.append(worker)
                _port_from_banner(worker, name)
                workers[name] = worker

            _wait_live(router_port, expected=len(WORKER_NAMES))
            print(f"fleet live: {len(WORKER_NAMES)} workers registered")

            with ServiceClient(port=router_port) as client:
                served = [client.submit(config, as_text=True)
                          for config in BATCH]
                fleet = client.fleet_stats()
            assert served == serial, \
                "routed bytes differ from serial run_campaign"
            forwards = {w["name"]: w["forwards"]
                        for w in fleet["registry"]["workers"]}
            print(f"mixed batch byte-identical through router: OK "
                  f"(forwards={forwards})")

            # A fresh cell whose ring owner we kill before it ever runs:
            # the router must fail the key over to the survivor.  The
            # ring is content-derived, so this mirror predicts the owner.
            ring = HashRing()
            for name in WORKER_NAMES:
                ring.add(name)
            failover_cell = ExperimentConfig(
                os_name="nt4", workload="games",
                duration_s=DURATION_S, seed=4242,
            )
            victim = ring.lookup(cache_key(failover_cell))
            _drain(workers[victim], victim)
            print(f"worker {victim} (owner of the failover cell) drained "
                  "cleanly on SIGTERM")

            with ServiceClient(port=router_port) as client:
                failover = client.submit(failover_cell, as_text=True)
                fleet = client.fleet_stats()
            expected = sample_set_to_json(
                run_campaign([failover_cell]).sample_sets[0]
            )
            assert failover == expected, \
                "failover bytes differ from serial run_campaign"
            states = {w["name"]: w["state"]
                      for w in fleet["registry"]["workers"]}
            assert states[victim] == "down", \
                f"router never observed {victim} dying (states={states})"
            print(f"failover byte-identical via survivor: OK "
                  f"(states={states})")

            leftovers = list(Path(cache_dir).glob("*.tmp"))
            assert not leftovers, f"fleet leaked temp files: {leftovers}"
            entries = list(Path(cache_dir).glob("*.json"))
            assert len(entries) == len(BATCH) + 1, \
                f"expected {len(BATCH) + 1} cache entries, got {len(entries)}"
            print("shared result store consistent: OK")

            survivor = next(n for n in WORKER_NAMES if n != victim)
            _drain(workers[survivor], survivor)
            _drain(router, "router")
        finally:
            for process in procs:
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=30)
    print("fleet smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
