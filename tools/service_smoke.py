#!/usr/bin/env python
"""CI smoke for the serving layer: boot, submit, verify bytes, drain.

Boots a real ``python -m repro serve`` subprocess on an ephemeral port,
submits one short cell over TCP, asserts the served bytes are identical
to a serial ``run_campaign`` of the same config, then SIGTERMs the
server and checks a clean drain (exit 0, no ``.tmp`` leftovers in the
cache directory).

Exit status is non-zero on any violation, so CI can run this file
directly.
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.campaign import run_campaign  # noqa: E402
from repro.core.experiment import ExperimentConfig  # noqa: E402
from repro.core.export import sample_set_to_json  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

CONFIG = ExperimentConfig(
    os_name="win98", workload="office", duration_s=2.0, seed=1999
)


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as cache_dir:
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", cache_dir],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            banner = server.stdout.readline().strip()
            print(banner)
            assert "listening on" in banner, f"bad banner: {banner!r}"
            port = int(banner.rsplit(":", 1)[1])

            with ServiceClient(port=port) as client:
                served = client.submit(CONFIG, as_text=True)
                stats = client.stats()
            print(f"served {len(served)} bytes; "
                  f"counters={stats['counters']}")

            serial = sample_set_to_json(run_campaign([CONFIG]).sample_sets[0])
            assert served == serial, "served bytes differ from serial run_campaign"
            print("byte-identical to serial run_campaign: OK")

            server.send_signal(signal.SIGTERM)
            stdout, _ = server.communicate(timeout=120)
            print(stdout.strip())
            assert server.returncode == 0, f"server exited {server.returncode}"
            assert "drained and closed" in stdout, "no drain banner on SIGTERM"

            leftovers = list(Path(cache_dir).glob("*.tmp"))
            assert not leftovers, f"drain leaked temp files: {leftovers}"
            entries = list(Path(cache_dir).glob("*.json"))
            assert len(entries) == 1, f"expected 1 cache entry, got {entries}"
            print("graceful drain left the cache consistent: OK")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30)
    print("service smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
