#!/usr/bin/env python
"""Regenerate every paper table/figure without pytest.

One-shot driver for users who just want the artefacts:

    python tools/make_all_figures.py [duration_s] [output_dir] [--jobs N]
                                     [--cache-dir DIR]

Writes the same files as ``pytest benchmarks/`` into ``output_dir``
(default ``benchmarks/results``).  Duration is simulated seconds per
experiment cell (default 120; 600 for publication-quality tails).

The nine simulation cells (the 2 OS x 4 workload matrix plus the
Figure 5 virus-scanner run) are independent and deterministic, so
``--jobs`` fans them across worker processes and ``--cache-dir`` memoizes
them -- rerunning after an analysis-side change then costs seconds, not
re-simulation.  Output is byte-identical regardless of either flag.
"""

import argparse
import time
from pathlib import Path

from repro.analysis.charts import mttf_chart
from repro.analysis.mttf import mttf_curve
from repro.analysis.tolerance import format_table1
from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.report import compare_sample_sets, format_figure4_panel
from repro.core.samples import LatencyKind
from repro.core.worst_case import WorstCaseTable
from repro.workloads.perturbations import VIRUS_SCANNER
from repro.core.histogram import LatencyHistogram

WORKLOADS = ("office", "workstation", "games", "web")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("duration", type=float, nargs="?", default=120.0,
                        help="simulated seconds per experiment cell")
    parser.add_argument("out_dir", type=Path, nargs="?",
                        default=Path("benchmarks/results"))
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent cells")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory")
    parser.add_argument("--seed", type=int, default=1999)
    args = parser.parse_args()

    duration = args.duration
    out_dir = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    seed = args.seed

    def save(name, content):
        (out_dir / name).write_text(content + "\n")
        print(f"wrote {out_dir / name}")

    save("table1_latency_tolerances.txt", format_table1())

    # Every simulation cell in one campaign: the 2x4 matrix plus the
    # Figure 5 virus-scanner run.
    matrix_keys = [(os_name, workload)
                   for os_name in ("nt4", "win98") for workload in WORKLOADS]
    configs = [
        ExperimentConfig(os_name=os_name, workload=workload,
                         duration_s=duration, seed=seed)
        for os_name, workload in matrix_keys
    ]
    configs.append(
        ExperimentConfig(os_name="win98", workload="office", duration_s=duration,
                         seed=seed, extra_profile=VIRUS_SCANNER)
    )

    print(f"running the OS x workload matrix ({duration:.0f}s per cell, "
          f"jobs={args.jobs})...")
    t0 = time.time()
    report = run_campaign(configs, jobs=args.jobs, cache_dir=args.cache_dir)
    wall = time.time() - t0
    matrix = dict(zip(matrix_keys, report.sample_sets))
    scanned = report.sample_sets[-1]
    cache_note = (f", {report.cache_hits} cached" if args.cache_dir else "")
    print(f"  {len(configs)} cells in {wall:.0f}s wall{cache_note}")

    # Figure 4.
    panels = []
    for os_name, kind, priority in (
        ("nt4", LatencyKind.DPC_INTERRUPT, None),
        ("win98", LatencyKind.DPC_INTERRUPT, None),
        ("nt4", LatencyKind.THREAD, 28),
        ("win98", LatencyKind.THREAD, 28),
        ("nt4", LatencyKind.THREAD, 24),
        ("win98", LatencyKind.THREAD, 24),
    ):
        for workload in WORKLOADS:
            panels.append(format_figure4_panel(matrix[(os_name, workload)], kind, priority))
            panels.append("")
    save("figure4_latency_distributions.txt", "\n".join(panels))

    # Table 3.
    save(
        "table3_win98_worst_case.txt",
        "\n\n".join(WorstCaseTable(matrix[("win98", w)]).format() for w in WORKLOADS),
    )

    # Figure 5.
    base24 = LatencyHistogram.from_values(
        matrix[("win98", "office")].latencies_ms(LatencyKind.THREAD, priority=24))
    scan24 = LatencyHistogram.from_values(
        scanned.latencies_ms(LatencyKind.THREAD, priority=24))
    save("figure5_virus_scanner.txt",
         base24.render("no virus scanner") + "\n\n" + scan24.render("with virus scanner"))

    # Figures 6 and 7.
    for name, kind, priority in (
        ("figure6_softmodem_dpc_mttf.txt", LatencyKind.DPC_INTERRUPT, None),
        ("figure7_softmodem_thread_mttf.txt", LatencyKind.THREAD_INTERRUPT, 28),
    ):
        curves = {
            w: mttf_curve(matrix[("win98", w)].latencies_ms(kind, priority=priority),
                          compute_ms=2.0)
            for w in WORKLOADS
        }
        rows = []
        for w in WORKLOADS:
            rows.append(f"-- {w} --")
            rows.extend(p.format() for p in curves[w])
        save(name, "\n".join(rows) + "\n\n" + mttf_chart(curves))

    # Section 4 ratios.
    save(
        "section4_comparison.txt",
        "\n\n".join(
            compare_sample_sets(matrix[("nt4", w)], matrix[("win98", w)]).format()
            for w in WORKLOADS
        ),
    )
    print("done.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
