#!/usr/bin/env python
"""Regenerate every paper table/figure without pytest.

One-shot driver for users who just want the artefacts:

    python tools/make_all_figures.py [duration_s] [output_dir]

Writes the same files as ``pytest benchmarks/`` into ``output_dir``
(default ``benchmarks/results``).  Duration is simulated seconds per
experiment cell (default 120; 600 for publication-quality tails).
"""

import sys
import time
from pathlib import Path

from repro.analysis.charts import mttf_chart
from repro.analysis.mttf import mttf_curve
from repro.analysis.tolerance import format_table1
from repro.core.experiment import ExperimentConfig, run_latency_experiment
from repro.core.report import compare_sample_sets, format_figure4_panel
from repro.core.samples import LatencyKind
from repro.core.worst_case import WorstCaseTable
from repro.workloads.perturbations import VIRUS_SCANNER
from repro.core.histogram import LatencyHistogram

WORKLOADS = ("office", "workstation", "games", "web")


def main() -> int:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("benchmarks/results")
    out_dir.mkdir(parents=True, exist_ok=True)
    seed = 1999

    def save(name, content):
        (out_dir / name).write_text(content + "\n")
        print(f"wrote {out_dir / name}")

    save("table1_latency_tolerances.txt", format_table1())

    print(f"running the OS x workload matrix ({duration:.0f}s per cell)...")
    matrix = {}
    for os_name in ("nt4", "win98"):
        for workload in WORKLOADS:
            t0 = time.time()
            matrix[(os_name, workload)] = run_latency_experiment(
                ExperimentConfig(os_name=os_name, workload=workload,
                                 duration_s=duration, seed=seed)
            ).sample_set
            print(f"  {os_name}/{workload}: {time.time() - t0:.0f}s wall")

    # Figure 4.
    panels = []
    for os_name, kind, priority in (
        ("nt4", LatencyKind.DPC_INTERRUPT, None),
        ("win98", LatencyKind.DPC_INTERRUPT, None),
        ("nt4", LatencyKind.THREAD, 28),
        ("win98", LatencyKind.THREAD, 28),
        ("nt4", LatencyKind.THREAD, 24),
        ("win98", LatencyKind.THREAD, 24),
    ):
        for workload in WORKLOADS:
            panels.append(format_figure4_panel(matrix[(os_name, workload)], kind, priority))
            panels.append("")
    save("figure4_latency_distributions.txt", "\n".join(panels))

    # Table 3.
    save(
        "table3_win98_worst_case.txt",
        "\n\n".join(WorstCaseTable(matrix[("win98", w)]).format() for w in WORKLOADS),
    )

    # Figure 5.
    scanned = run_latency_experiment(
        ExperimentConfig(os_name="win98", workload="office", duration_s=duration,
                         seed=seed, extra_profile=VIRUS_SCANNER)
    ).sample_set
    base24 = LatencyHistogram.from_values(
        matrix[("win98", "office")].latencies_ms(LatencyKind.THREAD, priority=24))
    scan24 = LatencyHistogram.from_values(
        scanned.latencies_ms(LatencyKind.THREAD, priority=24))
    save("figure5_virus_scanner.txt",
         base24.render("no virus scanner") + "\n\n" + scan24.render("with virus scanner"))

    # Figures 6 and 7.
    for name, kind, priority in (
        ("figure6_softmodem_dpc_mttf.txt", LatencyKind.DPC_INTERRUPT, None),
        ("figure7_softmodem_thread_mttf.txt", LatencyKind.THREAD_INTERRUPT, 28),
    ):
        curves = {
            w: mttf_curve(matrix[("win98", w)].latencies_ms(kind, priority=priority),
                          compute_ms=2.0)
            for w in WORKLOADS
        }
        rows = []
        for w in WORKLOADS:
            rows.append(f"-- {w} --")
            rows.extend(p.format() for p in curves[w])
        save(name, "\n".join(rows) + "\n\n" + mttf_chart(curves))

    # Section 4 ratios.
    save(
        "section4_comparison.txt",
        "\n\n".join(
            compare_sample_sets(matrix[("nt4", w)], matrix[("win98", w)]).format()
            for w in WORKLOADS
        ),
    )
    print("done.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
